"""Tests for BatchNorm2D, Adam, and data augmentation."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    BatchNorm2D,
    Conv2D,
    Dense,
    Flatten,
    ReLU,
    Sequential,
    SoftmaxCrossEntropy,
    augment_flips_shifts,
)


class TestBatchNorm2D:
    def test_normalizes_in_training(self):
        rng = np.random.default_rng(0)
        bn = BatchNorm2D(3)
        x = (rng.standard_normal((8, 3, 5, 5)) * 4 + 7).astype(np.float32)
        out = bn.forward(x)
        assert abs(out.mean()) < 1e-4
        assert abs(out.std() - 1.0) < 1e-2

    def test_inference_uses_running_stats(self):
        rng = np.random.default_rng(1)
        bn = BatchNorm2D(2, momentum=0.0)  # running stats = last batch
        x = (rng.standard_normal((16, 2, 4, 4)) * 2 + 3).astype(np.float32)
        bn.forward(x)
        bn.training = False
        out = bn.forward(x)
        assert abs(out.mean()) < 0.1

    def test_gamma_beta_applied(self):
        bn = BatchNorm2D(1)
        bn.params["W"][...] = 2.0
        bn.params["b"][...] = 5.0
        x = np.random.default_rng(2).standard_normal((4, 1, 3, 3)).astype(np.float32)
        out = bn.forward(x)
        assert abs(out.mean() - 5.0) < 1e-3
        assert abs(out.std() - 2.0) < 2e-2

    def test_gradient_numerical(self):
        rng = np.random.default_rng(3)
        bn = BatchNorm2D(2)
        bn.params = {k: v.astype(np.float64) for k, v in bn.params.items()}
        bn.grads = {k: np.zeros_like(v) for k, v in bn.params.items()}
        x = rng.standard_normal((3, 2, 4, 4))

        def loss():
            return float((bn.forward(x) ** 2).sum() / 2)

        out = bn.forward(x)
        dx = bn.backward(out)
        eps = 1e-5
        num = np.zeros_like(x)
        it = np.nditer(x, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            orig = x[idx]
            x[idx] = orig + eps
            fp = loss()
            x[idx] = orig - eps
            fm = loss()
            x[idx] = orig
            num[idx] = (fp - fm) / (2 * eps)
            it.iternext()
        np.testing.assert_allclose(dx, num, rtol=1e-3, atol=1e-5)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            BatchNorm2D(2).forward(np.zeros((2, 3, 4, 4), dtype=np.float32))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BatchNorm2D(0)
        with pytest.raises(ValueError):
            BatchNorm2D(1, momentum=1.0)

    def test_in_network_trains(self):
        rng = np.random.default_rng(4)
        net = Sequential(
            [
                Conv2D(1, 4, 3, rng=rng),
                BatchNorm2D(4),
                ReLU(),
                Flatten(),
                Dense(4 * 6 * 6, 2, rng=rng),
            ]
        )
        x = rng.standard_normal((64, 1, 8, 8)).astype(np.float32)
        y = (x.mean(axis=(1, 2, 3)) > 0).astype(np.int64)
        loss_fn = SoftmaxCrossEntropy()
        opt = Adam(net, lr=5e-3)
        first = None
        for _ in range(30):
            opt.zero_grad()
            loss = loss_fn(net.forward(x), y)
            if first is None:
                first = loss
            net.backward(loss_fn.backward())
            opt.step()
        assert loss < first


class TestAdam:
    def test_converges_on_quadratic(self):
        net = Sequential([Dense(1, 1, rng=np.random.default_rng(0))])
        net.layers[0].params["W"][...] = 5.0
        net.layers[0].params["b"][...] = 0.0
        opt = Adam(net, lr=0.2)
        x = np.ones((1, 1), dtype=np.float32)
        for _ in range(200):
            opt.zero_grad()
            out = net.forward(x)
            net.backward(out)
            opt.step()
        assert abs(float(net.forward(x)[0, 0])) < 1e-2

    def test_handles_illconditioned_directions(self):
        # Ill-conditioned quadratic: one steep, one shallow input direction.
        # Adam's per-parameter scaling must shrink BOTH weights despite the
        # 100x gradient-magnitude gap between them.
        rng = np.random.default_rng(1)
        net = Sequential([Dense(2, 1, rng=rng)])
        net.layers[0].params["W"][...] = np.array([[1.0], [1.0]], dtype=np.float32)
        opt = Adam(net, lr=0.05)
        x = np.array([[10.0, 0.1]], dtype=np.float32)
        for _ in range(300):
            opt.zero_grad()
            out = net.forward(x)
            net.backward(out)
            opt.step()
        assert abs(float(net.forward(x)[0, 0])) < 0.05

    def test_rejects_bad_hyperparams(self):
        net = Sequential([])
        with pytest.raises(ValueError):
            Adam(net, lr=0.0)
        with pytest.raises(ValueError):
            Adam(net, beta1=1.0)


class TestAugmentation:
    def test_doubles_dataset(self):
        x = np.random.default_rng(0).random((10, 1, 8, 8)).astype(np.float32)
        y = np.arange(10)
        xa, ya = augment_flips_shifts(x, y, rng=np.random.default_rng(1))
        assert xa.shape == (20, 1, 8, 8)
        np.testing.assert_array_equal(ya[:10], ya[10:])

    def test_originals_preserved(self):
        x = np.random.default_rng(2).random((5, 1, 6, 6)).astype(np.float32)
        xa, _ = augment_flips_shifts(x, np.zeros(5), rng=np.random.default_rng(3))
        np.testing.assert_array_equal(xa[:5], x)

    def test_flip_actually_flips(self):
        x = np.zeros((1, 1, 4, 4), dtype=np.float32)
        x[0, 0, :, 0] = 1.0  # left column lit
        xa, _ = augment_flips_shifts(
            x, np.zeros(1), rng=np.random.default_rng(0), flip_prob=1.0, max_shift=0
        )
        np.testing.assert_array_equal(xa[1][0, :, -1], 1.0)

    def test_rejects_bad_ndim(self):
        with pytest.raises(ValueError):
            augment_flips_shifts(np.zeros((3, 4, 4)), np.zeros(3))
