"""Tests for metrics containers, the cost model, and device placement."""

import numpy as np
import pytest

from repro.core.metrics import LatencyStats, RunMetrics, StageCounters
from repro.devices import (
    CostModel,
    Device,
    Placement,
    baseline_placement,
    ffs_va_placement,
    standard_server,
)


class TestStageCounters:
    def test_record_accumulates(self):
        c = StageCounters()
        c.record(10, 7)
        c.record(5, 5)
        assert (c.entered, c.passed, c.filtered) == (15, 12, 3)
        assert c.pass_rate == pytest.approx(0.8)

    def test_rejects_overpass(self):
        with pytest.raises(ValueError):
            StageCounters().record(3, 4)

    def test_empty_pass_rate(self):
        assert StageCounters().pass_rate == 0.0


class TestLatencyStats:
    def test_from_samples(self):
        s = LatencyStats.from_samples([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.max == pytest.approx(4.0)
        assert s.p50 == pytest.approx(2.5)

    def test_empty(self):
        s = LatencyStats.from_samples([])
        assert s.count == 0
        assert s.mean == 0.0


class TestRunMetrics:
    def test_throughput(self):
        m = RunMetrics(n_streams=2, duration=10.0, frames_ingested=600)
        assert m.throughput_fps == pytest.approx(60.0)
        assert m.per_stream_fps == pytest.approx(30.0)

    def test_realtime_criterion(self):
        m = RunMetrics(frames_offered=1000, frames_ingested=1000)
        assert m.realtime()
        m2 = RunMetrics(frames_offered=1000, frames_ingested=900)
        assert not m2.realtime()

    def test_stage_fraction(self):
        m = RunMetrics(frames_ingested=100)
        m.stages["tyolo"].record(25, 10)
        assert m.stage_fraction("tyolo") == pytest.approx(0.25)

    def test_conservation_detects_violation(self):
        m = RunMetrics(frames_ingested=10)
        m.stages["sdd"].record(10, 2)
        m.stages["snm"].record(5, 5)  # more than sdd passed
        with pytest.raises(AssertionError):
            m.check_conservation()


class TestCostModel:
    def test_paper_calibration_sdd(self):
        # SDD end-to-end ~20K FPS (Figure 5 caption).
        assert 15_000 < CostModel().effective_fps("sdd") < 25_000

    def test_paper_calibration_snm_batched(self):
        # SNM ~2K FPS at practical batch sizes.
        fps = CostModel().effective_fps("snm", batch_size=10)
        assert 1_200 < fps < 3_000

    def test_paper_calibration_tyolo(self):
        # T-YOLO ~200 FPS end-to-end.
        assert 150 < CostModel().effective_fps("tyolo", 2) < 230

    def test_paper_calibration_ref(self):
        # Reference model ~56 FPS end-to-end.
        assert 45 < CostModel().effective_fps("ref") < 67

    def test_speed_ordering(self):
        # "SDD processes 10x faster than SNM and 100x faster than T-YOLO."
        cm = CostModel()
        sdd = cm.effective_fps("sdd")
        snm = cm.effective_fps("snm", 10)
        ty = cm.effective_fps("tyolo", 2)
        ref = cm.effective_fps("ref")
        assert sdd > 5 * snm
        assert snm > 5 * ty
        assert ty > 2 * ref

    def test_batching_amortizes_overhead(self):
        cm = CostModel()
        assert cm.effective_fps("snm", 30) > 1.5 * cm.effective_fps("snm", 1)

    def test_service_time_linear_in_batch(self):
        cm = CostModel()
        t1 = cm.service_time("snm", 1)
        t10 = cm.service_time("snm", 10)
        per_frame = (t10 - t1) / 9
        assert per_frame == pytest.approx(
            cm.snm_infer + cm.snm_resize + cm.transfer_per_frame
        )

    def test_rejects_bad_stage_and_batch(self):
        with pytest.raises(ValueError):
            CostModel().service_time("warp", 1)
        with pytest.raises(ValueError):
            CostModel().service_time("snm", 0)


class TestDevice:
    def test_run_serializes(self):
        d = Device("gpu", "gpu")
        end1 = d.run(0.0, 1.0)
        end2 = d.run(0.5, 1.0)  # arrives while busy
        assert end1 == pytest.approx(1.0)
        assert end2 == pytest.approx(2.0)

    def test_utilization(self):
        d = Device("gpu", "gpu")
        d.run(0.0, 2.0)
        assert d.utilization(4.0) == pytest.approx(0.5)
        assert d.utilization(0.0) == 0.0

    def test_reset(self):
        d = Device("gpu", "gpu")
        d.run(0.0, 2.0)
        d.reset()
        assert d.busy_until == 0.0
        assert d.busy_time == 0.0

    def test_rejects_negative_service(self):
        with pytest.raises(ValueError):
            Device("gpu", "gpu").run(0.0, -1.0)


class TestPlacement:
    def test_ffs_va_placement_matches_paper(self):
        p = ffs_va_placement()
        assert p.device_for("sdd").kind == "cpu"
        assert p.device_for("snm").name == p.device_for("tyolo").name  # share GPU 0
        assert p.device_for("ref").name != p.device_for("snm").name  # ref alone

    def test_baseline_uses_both_gpus(self):
        p = baseline_placement()
        assert len(p.devices_for("ref")) == 2

    def test_rejects_unknown_stage(self):
        with pytest.raises(ValueError):
            Placement(standard_server(), {"warp": ["gpu0"]})

    def test_rejects_unknown_device(self):
        with pytest.raises(ValueError):
            Placement(standard_server(), {"ref": ["gpu7"]})

    def test_rejects_empty_device_list(self):
        with pytest.raises(ValueError):
            Placement(standard_server(), {"ref": []})

    def test_reset_clears_devices(self):
        p = ffs_va_placement()
        p.devices["gpu0"].run(0.0, 5.0)
        p.reset()
        assert p.devices["gpu0"].busy_time == 0.0
