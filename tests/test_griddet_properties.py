"""Property-based tests for the grid-detector backbone."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.griddet import GridDetector


def frame_with_blobs(positions, h=80, w=120, size=8, delta=0.4, bg_level=0.45):
    bg = np.full((h, w), bg_level, dtype=np.float32)
    frame = bg.copy()
    for cy, cx in positions:
        frame[
            max(0, cy - size) : min(h, cy + size),
            max(0, cx - size) : min(w, cx + size),
        ] += delta
    return frame, bg


class TestDetectorProperties:
    @given(
        cy=st.integers(15, 65),
        cx=st.integers(15, 105),
        delta=st.floats(0.25, 0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_single_blob_always_found(self, cy, cx, delta):
        frame, bg = frame_with_blobs([(cy, cx)], delta=delta)
        det = GridDetector()
        assert det.count(frame, bg) >= 1

    @given(gain=st.floats(0.85, 1.15))
    @settings(max_examples=30, deadline=None)
    def test_global_gain_invariance(self, gain):
        frame, bg = frame_with_blobs([(40, 60)])
        det = GridDetector()
        scaled = np.clip(frame * gain, 0.0, 1.0).astype(np.float32)
        assert det.count(scaled, bg) == det.count(frame, bg)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_noise_alone_never_detects(self, seed):
        rng = np.random.default_rng(seed)
        bg = np.full((60, 80), 0.5, dtype=np.float32)
        noisy = bg + rng.normal(0, 0.012, size=bg.shape).astype(np.float32)
        assert GridDetector().count(noisy, bg) == 0

    @given(
        n_blobs=st.integers(1, 3),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=30, deadline=None)
    def test_count_bounded_by_blobs(self, n_blobs, seed):
        # Detections can merge (undercount) but never exceed the number of
        # well-separated blobs placed plus zero false positives on a flat bg.
        rng = np.random.default_rng(seed)
        xs = rng.choice(np.arange(20, 340, 40), size=n_blobs, replace=False)
        positions = [(40, int(x)) for x in xs]
        frame, bg = frame_with_blobs(positions, w=360)
        count = GridDetector().count(frame, bg)
        assert 1 <= count <= n_blobs

    @given(conf=st.floats(0.05, 0.9))
    @settings(max_examples=20, deadline=None)
    def test_confidence_threshold_monotone(self, conf):
        frame, bg = frame_with_blobs([(40, 30), (40, 90)], delta=0.3)
        strict = GridDetector(conf_threshold=min(conf + 0.09, 0.95))
        loose = GridDetector(conf_threshold=conf)
        assert strict.count(frame, bg) <= loose.count(frame, bg)

    def test_detections_sit_inside_frame(self):
        frame, bg = frame_with_blobs([(10, 10), (70, 110)])
        for d in GridDetector().detect(frame, bg):
            assert 0 <= d.x0 < d.x1 <= 120
            assert 0 <= d.y0 < d.y1 <= 80
            assert 0 < d.confidence <= 1.0
