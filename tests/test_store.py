"""Detection store + query tier: serializers, segments, queries, serving.

The acceptance spine is cross-runtime: a threaded run, a simulated run,
and a two-instance (simulated) cluster run with a forced mid-run stream
handoff over the same workload must answer count/top-k queries
identically from their persisted stores — the store-level analogue of
``assert_stage_counts_equal``.
"""

import json
import os
import socket
import struct
import threading
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.detection_eval import evaluate_map_from_store
from repro.core import FFSVAConfig, build_trace
from repro.models import ModelZoo
from repro.nn import TrainConfig
from repro.obs.export import ClusterMetricsServer, MetricsAggregator, TelemetryServer
from repro.runtime import ThreadedPipeline
from repro.sim import PipelineSimulator
from repro.sim.cluster import ClusterSimulator
from repro.store import (
    DetectionRecord,
    DetStore,
    DetStoreReader,
    MultiReader,
    assert_store_rows_equal,
    count_detections,
    open_store,
    recover_store,
    replay_detections,
    top_k_streams,
    window_aggregate,
)
from repro.store.server import SubscriptionHub, query_reply, sse_event
from repro.video import jackson, make_stream
from tests.helpers import make_synth_trace

N_FRAMES = 160


# ---------------------------------------------------------------------------
# serializer property tests (satellite a)
# ---------------------------------------------------------------------------

_finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=40
)
_records = st.builds(
    DetectionRecord,
    stream=_text,
    frame=st.integers(min_value=-(2**62), max_value=2**62),
    t=_finite,
    cls=_text,
    box=st.one_of(st.none(), st.tuples(_finite, _finite, _finite, _finite)),
    score=_finite,
    disposition=st.sampled_from(["ref", "sdd", "snm", "tyolo", "dropped", "aborted"]),
)


def _bits(x: float) -> bytes:
    return struct.pack("<d", x)


class TestRecordSerializers:
    @settings(max_examples=120, deadline=None)
    @given(rec=_records)
    def test_json_round_trip_is_bit_stable(self, rec):
        back = DetectionRecord.from_json(rec.to_json())
        assert back == rec
        assert _bits(back.t) == _bits(rec.t)
        assert _bits(back.score) == _bits(rec.score)
        if rec.box is not None:
            for a, b in zip(back.box, rec.box):
                assert _bits(a) == _bits(b)

    @settings(max_examples=120, deadline=None)
    @given(rec=_records)
    def test_binary_round_trip_is_bit_stable(self, rec):
        back = DetectionRecord.from_bytes(rec.to_bytes())
        assert back == rec
        assert _bits(back.t) == _bits(rec.t)
        assert back.disposition == rec.disposition

    @settings(max_examples=60, deadline=None)
    @given(rec=_records)
    def test_formats_agree(self, rec):
        assert DetectionRecord.from_json(rec.to_json()) == DetectionRecord.from_bytes(
            rec.to_bytes()
        )

    def test_binary_rejects_trailing_garbage(self):
        rec = DetectionRecord("s", 1, 0.5, "car", None, 1.0, "ref")
        with pytest.raises(ValueError):
            DetectionRecord.from_bytes(rec.to_bytes() + b"xx")


# ---------------------------------------------------------------------------
# segment lifecycle edge cases (satellite c)
# ---------------------------------------------------------------------------


def _fixed_width_record(i: int) -> DetectionRecord:
    """Records whose jsonl encoding has identical width for i in [10, 99]."""
    assert 10 <= i <= 99
    return DetectionRecord("sX", i, float(i), "car", None, 1.0, "ref")


class TestSegmentLifecycle:
    def test_rotation_at_exact_byte_boundary(self, tmp_path):
        width = len(_fixed_width_record(10).to_json().encode()) + 1  # newline
        per_seg = -(-512 // width)  # ceil: segment_bytes is an exact multiple
        store = DetStore(tmp_path, segment_bytes=per_seg * width, terminal="ref")
        n = per_seg * 3  # exactly three boundary-full segments
        for i in range(n):
            store.append(_fixed_width_record(10 + i % 90))
        manifest = store.close()
        segs = manifest["segments"]
        # A record landing exactly on the boundary stays in its segment: every
        # sealed segment is exactly full, none ever exceeds the bound.
        assert [s["rows"] for s in segs] == [per_seg] * 3
        assert all(s["bytes"] == store.segment_bytes for s in segs)
        assert len(DetStoreReader(tmp_path).records()) == n

    def test_retention_deletes_oldest_and_counts_drops(self, tmp_path):
        store = DetStore(tmp_path, segment_bytes=512, max_segments=2, terminal="ref")
        for i in range(60):
            store.append(_fixed_width_record(10 + i % 90))
        manifest = store.close()
        assert len(manifest["segments"]) <= 2
        assert manifest["dropped_segments"] > 0
        assert manifest["dropped_rows"] > 0
        on_disk = [n for n in os.listdir(tmp_path) if n.startswith("det-")]
        assert sorted(on_disk) == sorted(s["file"] for s in manifest["segments"])
        # Surviving rows = appended - dropped, all still readable.
        reader = DetStoreReader(tmp_path)
        assert len(reader.records()) == 60 - manifest["dropped_rows"]

    def test_segment_deleted_mid_query_is_reported_not_fatal(self, tmp_path):
        store = DetStore(tmp_path, segment_bytes=512, terminal="ref")
        for i in range(40):
            store.append(_fixed_width_record(10 + i))
        manifest = store.close()
        victim = manifest["segments"][0]
        # The reader trusts the manifest it just read; retention (or an
        # operator) deletes the oldest segment before the file is opened.
        os.remove(tmp_path / victim["file"])
        reader = DetStoreReader(tmp_path)
        rows = reader.records()
        assert victim["file"] in reader.missing
        assert len(rows) == 40 - victim["rows"]

    def test_crash_mid_segment_write_reads_prefix_and_recovers(self, tmp_path):
        store = DetStore(tmp_path, segment_bytes=100_000, terminal="ref")
        for i in range(30):
            store.append(_fixed_width_record(10 + i))
        store.flush()
        # Simulated crash: the process dies mid-append — the live segment has
        # a truncated last line and the manifest never saw a seal.
        live = [n for n in os.listdir(tmp_path) if n.startswith("det-")]
        assert len(live) == 1
        path = tmp_path / live[0]
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 7])
        # An unsuspecting reader sees every complete row, no error.
        reader = DetStoreReader(tmp_path)
        assert len(reader.records()) == 29
        assert reader.manifest()["segments"] == []  # live file was unmanifested
        # recover_store seals what survived into a fresh manifest.
        manifest = recover_store(tmp_path)
        assert manifest["recovered"] is True
        assert [s["rows"] for s in manifest["segments"]] == [29]
        assert manifest["segments"][0]["detected"] == 29
        assert len(DetStoreReader(tmp_path).records()) == 29

    def test_time_index_prunes_untouched_segments(self, tmp_path):
        store = DetStore(tmp_path, segment_bytes=512, terminal="ref")
        for i in range(60):
            store.append(_fixed_width_record(10 + i))  # t = 10..69
        manifest = store.close()
        assert len(manifest["segments"]) >= 4
        reader = DetStoreReader(tmp_path)
        all_rows = reader.records()
        opened_all = list(reader.last_opened)
        some = reader.records(t0=30.0, t1=35.0)
        assert [r.frame for r in some] == list(range(30, 36))
        assert len(reader.last_opened) < len(opened_all)
        assert len(all_rows) == 60

    def test_closed_store_rejects_appends(self, tmp_path):
        store = DetStore(tmp_path, terminal="ref")
        store.close()
        with pytest.raises(RuntimeError):
            store.append(_fixed_width_record(10))

    def test_from_config_disabled_by_default(self):
        assert DetStore.from_config(FFSVAConfig(), terminal="ref") is None


# ---------------------------------------------------------------------------
# query engine
# ---------------------------------------------------------------------------


@pytest.fixture
def small_store(tmp_path):
    store = DetStore(tmp_path, terminal="ref")
    for i in range(30):
        stream = "s0" if i % 3 else "s1"
        disp = "ref" if i % 2 else "sdd"
        store.append(
            DetectionRecord(stream, i, i / 30.0, "car", None, float(i % 2), disp)
        )
    store.close()
    return DetStoreReader(tmp_path)


class TestQueries:
    def test_count_with_filters(self, small_store):
        total = count_detections(small_store, disposition="any")
        assert total == 30
        detected = count_detections(small_store)
        assert detected == 15
        assert count_detections(small_store, disposition="sdd") == 15
        s0 = count_detections(small_store, stream="s0")
        s1 = count_detections(small_store, stream="s1")
        assert s0 + s1 == detected

    def test_empty_range_and_unknown_stream(self, small_store):
        assert count_detections(small_store, t0=100.0, t1=200.0) == 0
        assert count_detections(small_store, stream="nope") == 0
        assert count_detections(small_store, cls="zebra") == 0
        assert top_k_streams(small_store, 3, t0=100.0) == []
        assert window_aggregate(small_store, 1.0, stream="nope") == []

    def test_top_k_order_and_ties(self, small_store):
        top = top_k_streams(small_store, 5)
        assert top[0][0] == "s0" and top[0][1] > top[1][1]
        assert top_k_streams(small_store, 1) == top[:1]

    def test_window_aggregate_conserves_counts(self, small_store):
        bins = window_aggregate(small_store, 0.25, disposition="any")
        assert sum(b["count"] for b in bins) == 30
        for b in bins:
            assert b["t1"] - b["t0"] == pytest.approx(0.25)
        assert max(b["score_max"] for b in bins) == 1.0

    def test_open_store_single_vs_cluster_layout(self, tmp_path):
        parent = tmp_path / "cluster"
        for i, n in enumerate((4, 6)):
            sub = DetStore(parent / f"instance-{i}", terminal="ref")
            for j in range(n):
                sub.append(DetectionRecord(f"s{i}", j, j / 30.0, "car", None, 1.0, "ref"))
            sub.close()
        merged = open_store(parent)
        assert isinstance(merged, MultiReader)
        assert count_detections(merged) == 10
        solo = open_store(parent / "instance-1")
        assert isinstance(solo, DetStoreReader)
        assert count_detections(solo) == 6
        with pytest.raises(FileNotFoundError):
            open_store(tmp_path / "nothing-here")


# ---------------------------------------------------------------------------
# cross-runtime + cluster-handoff acceptance
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def fleet():
    """Two small trained streams plus with-ref traces (one model zoo)."""
    zoo = ModelZoo()
    streams, traces = [], []
    for i, tor in enumerate((0.3, 0.5)):
        stream = make_stream(jackson(), N_FRAMES, tor=tor, seed=40 + i)
        zoo.train_for_stream(
            stream,
            n_train_frames=100,
            stride=2,
            train_config=TrainConfig(epochs=4, batch_size=32, seed=7),
        )
        streams.append(stream)
        traces.append(build_trace(stream, zoo, with_ref=True))
    return streams, traces, zoo


def _answers(reader):
    return {
        "detected": count_detections(reader),
        "any": count_detections(reader, disposition="any"),
        "topk": top_k_streams(reader, 5),
    }


class TestCrossRuntimeStoreEquivalence:
    def test_threaded_sim_and_handoff_cluster_answer_identically(
        self, fleet, tmp_path
    ):
        streams, traces, zoo = fleet
        cfg = FFSVAConfig(store_segment_kb=4)

        # 1. Threaded run with real inference.
        pipe = ThreadedPipeline(
            streams, zoo, cfg.with_(result_store_dir=str(tmp_path / "threaded"))
        )
        pipe.run()
        threaded = DetStoreReader(tmp_path / "threaded")

        # 2. Simulated run over the traces of the same models.
        sim = PipelineSimulator(
            traces,
            cfg.with_(result_store_dir=str(tmp_path / "sim")),
            online=False,
        )
        sim.run()
        simulated = DetStoreReader(tmp_path / "sim")

        # Row-for-row equality, not just aggregate agreement.
        assert_store_rows_equal(threaded, simulated, context="threaded vs sim")

        # 3. Two-instance cluster with a forced mid-run handoff: stream 0
        #    moves from instance 0 to instance 1 at a frame boundary k.
        parent = tmp_path / "cluster"
        inst = [
            PipelineSimulator(
                [traces[i]],
                cfg.with_(result_store_dir=str(parent / f"instance-{i}")),
                online=True,
            )
            for i in range(2)
        ]
        for i in range(2):
            inst[i].advance(2.0)
        k = inst[0].detach_stream(0)
        assert 0 < k < N_FRAMES, "handoff must happen mid-stream"
        inst[1].attach_stream(traces[0].sliced(k, N_FRAMES), arrival_offset=k)
        for i in range(2):
            inst[i].advance()
            inst[i].finalize()
        cluster = open_store(parent)

        a_threaded, a_sim, a_cluster = (
            _answers(threaded),
            _answers(simulated),
            _answers(cluster),
        )
        assert a_threaded == a_sim == a_cluster
        assert a_threaded["any"] == 2 * N_FRAMES

        # The handoff preserved exactly-one-record-per-outcome: merging the
        # instance stores reproduces the solo run's rows exactly.
        assert_store_rows_equal(simulated, cluster, context="sim vs cluster")

    def test_store_backed_evaluation(self, fleet, tmp_path):
        streams, traces, zoo = fleet
        sim = PipelineSimulator(
            [traces[0]],
            FFSVAConfig(result_store_dir=str(tmp_path / "ev")),
            online=False,
        )
        sim.run()
        reader = DetStoreReader(tmp_path / "ev")
        result = evaluate_map_from_store(zoo.reference, streams[0], reader)
        assert result["n_frames"] == count_detections(reader, stream=streams[0].stream_id)
        assert result["n_frames"] > 0
        assert 0.0 <= result["map"] <= 1.0

    def test_replay_respects_memory_budget(self, fleet, tmp_path):
        streams, traces, zoo = fleet
        sim = PipelineSimulator(
            [traces[0]],
            FFSVAConfig(result_store_dir=str(tmp_path / "rp")),
            online=False,
        )
        sim.run()
        reader = DetStoreReader(tmp_path / "rp")
        stream = streams[0]
        h, w = stream.shape
        chunk_frames = 8
        budget = 2 * chunk_frames * h * w * 4  # two chunks resident, max
        result = replay_detections(
            reader,
            stream,
            detector=zoo.reference,
            chunk_frames=chunk_frames,
            memory_budget_bytes=budget,
        )
        assert result.frames == [
            r.frame for r in sorted(reader.records(), key=lambda r: r.frame)
            if r.disposition == "ref"
        ]
        assert len(result.frames) > chunk_frames  # spans several chunks
        assert result.clip_stats["peak_bytes"] <= budget
        assert result.clip_stats["decode_count"] >= len(result.frames) // chunk_frames
        # Replay-produced records carry boxes the live sink never stores.
        assert all(r.disposition == "replay" and r.box is not None
                   for r in result.records)

    def test_cluster_simulator_writes_per_instance_stores(self, tmp_path):
        traces = [
            make_synth_trace(90, 0.8, 0.6, 0.4, seed=s, stream_id=f"st{s}",
                             with_ref=True)
            for s in range(4)
        ]
        parent = tmp_path / "csim"
        cfg = FFSVAConfig(
            cluster_instances=2,
            result_store_dir=str(parent),
            store_segment_kb=4,
        )
        ClusterSimulator(traces, cfg, online=True).run()
        assert sorted(os.listdir(parent)) == ["instance-0", "instance-1"]
        merged = open_store(parent)
        assert count_detections(merged, disposition="any") == 4 * 90
        solo = PipelineSimulator(
            traces,
            FFSVAConfig(result_store_dir=str(tmp_path / "solo")),
            online=True,
        )
        solo.run()
        assert _answers(merged) == _answers(open_store(tmp_path / "solo"))


# ---------------------------------------------------------------------------
# serving surface: /query, /subscribe (SSE + long-poll), /snapshot, fan-out
# ---------------------------------------------------------------------------


def _get_json(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return json.loads(resp.read())


class TestServingSurface:
    def _store(self, directory, n=20):
        store = DetStore(directory, terminal="ref")
        for i in range(n):
            store.append(
                DetectionRecord(
                    "s0" if i % 2 else "s1", i, i / 30.0, "car", None,
                    1.0, "ref" if i % 4 else "sdd",
                )
            )
        return store

    def test_query_endpoint_roundtrip(self, tmp_path):
        store = self._store(tmp_path)
        store.close()
        server = TelemetryServer(lambda: (None, None), store_dir=str(tmp_path)).start()
        try:
            doc = _get_json(f"{server.url}/query?q=count")
            assert doc["count"] == 15
            doc = _get_json(f"{server.url}/query?q=count&disposition=any&stream=s0")
            assert doc["count"] == 10
            doc = _get_json(f"{server.url}/query?q=topk&k=1")
            assert len(doc["top"]) == 1
            doc = _get_json(f"{server.url}/query?q=windows&window=0.25&disposition=any")
            assert sum(b["count"] for b in doc["windows"]) == 20
            with pytest.raises(urllib.error.HTTPError) as exc:
                _get_json(f"{server.url}/query?q=bogus")
            assert exc.value.code == 400
            with pytest.raises(urllib.error.HTTPError) as exc:
                _get_json(f"{server.url}/query?q=count&t0=abc")
            assert exc.value.code == 400
        finally:
            server.stop()

    def test_snapshot_carries_store_section(self, tmp_path):
        store = self._store(tmp_path, n=5)
        server = TelemetryServer(lambda: (None, None), store=store).start()
        try:
            snap = _get_json(f"{server.url}/snapshot")
            assert snap["store"]["seq"] == 5
            assert len(snap["store"]["recent"]) == 0  # appended before the hub
            store.append(DetectionRecord("s9", 99, 3.3, "car", None, 1.0, "ref"))
            snap = _get_json(f"{server.url}/snapshot")
            assert snap["store"]["recent"][-1]["stream"] == "s9"
        finally:
            server.stop()
            store.close()

    def test_long_poll_subscription(self, tmp_path):
        store = self._store(tmp_path, n=0)
        server = TelemetryServer(lambda: (None, None), store=store).start()
        try:
            doc = _get_json(f"{server.url}/subscribe?mode=poll&after=0")
            assert doc == {"next": 0, "records": []}
            store.append(DetectionRecord("s0", 1, 0.1, "car", None, 1.0, "ref"))
            store.append(DetectionRecord("s0", 2, 0.2, "car", None, 0.0, "sdd"))
            doc = _get_json(f"{server.url}/subscribe?mode=poll&after=0")
            assert doc["next"] == 2
            assert [r["frame"] for r in doc["records"]] == [1, 2]
            doc = _get_json(f"{server.url}/subscribe?mode=poll&after=2")
            assert doc["records"] == []
        finally:
            server.stop()
            store.close()

    def test_sse_subscription_over_real_socket(self, tmp_path):
        store = self._store(tmp_path, n=0)
        server = TelemetryServer(lambda: (None, None), store=store).start()
        got = {}

        def _subscribe():
            with socket.create_connection(("127.0.0.1", server.port), timeout=10) as s:
                s.sendall(
                    b"GET /subscribe?max_events=3&timeout=8 HTTP/1.0\r\n\r\n"
                )
                buf = b""
                while b"\n\n" not in buf.partition(b"\r\n\r\n")[2] or \
                        buf.count(b"data: ") < 3:
                    chunk = s.recv(4096)
                    if not chunk:
                        break
                    buf += chunk
                got["raw"] = buf

        sub = threading.Thread(target=_subscribe)
        sub.start()
        try:
            # Wait for the subscriber to register before appending.
            for _ in range(100):
                if store._listeners and len(
                    server._hub._subs if server._hub else []
                ):
                    break
                threading.Event().wait(0.05)
            for i in range(3):
                store.append(
                    DetectionRecord("s0", i, i / 30.0, "car", None, 1.0, "ref")
                )
            sub.join(timeout=10)
            assert not sub.is_alive()
            head, _, body = got["raw"].partition(b"\r\n\r\n")
            assert b"200" in head.split(b"\r\n")[0]
            assert b"text/event-stream" in head
            events = [e for e in body.split(b"\n\n") if e.strip()]
            assert len(events) == 3
            assert events[0].startswith(b"id: 1\ndata: ")
            payload = json.loads(events[0].split(b"data: ", 1)[1])
            assert payload["frame"] == 0 and payload["disposition"] == "ref"
        finally:
            server.stop()
            store.close()

    def test_sse_event_format(self):
        rec = DetectionRecord("s0", 7, 0.5, "car", None, 2.0, "ref")
        raw = sse_event(3, rec)
        assert raw.startswith(b"id: 3\ndata: {")
        assert raw.endswith(b"}\n\n")

    def test_hub_close_unblocks_subscribers(self, tmp_path):
        store = self._store(tmp_path, n=0)
        hub = SubscriptionHub(store)
        q = hub.subscribe()
        hub.close()
        assert q.get(timeout=1) == (None, None)
        last, items = hub.since(0, wait=5.0)  # returns immediately when closed
        assert items == []
        store.close()

    def test_query_reply_cluster_fanout_and_missing(self, tmp_path):
        for i, n in enumerate((3, 5)):
            sub = DetStore(tmp_path / f"i{i}", terminal="ref")
            for j in range(n):
                sub.append(DetectionRecord(f"s{i}", j, j / 30.0, "car", None, 1.0, "ref"))
            sub.close()
        targets = {
            "0": str(tmp_path / "i0"),
            "1": str(tmp_path / "i1"),
            "2": str(tmp_path / "gone"),
        }
        status, _, body = query_reply(targets, {"q": ["count"]})
        doc = json.loads(body)
        assert status == 200
        assert doc["count"] == 8
        assert doc["missing_instances"] == ["2"]
        status, _, _ = query_reply({"0": str(tmp_path / "gone")}, {"q": ["count"]})
        assert status == 404

    def test_cluster_metrics_server_merged_query(self, tmp_path):
        for i in range(2):
            sub = DetStore(tmp_path / f"instance-{i}", terminal="ref")
            for j in range(4):
                sub.append(DetectionRecord(f"s{i}", j, j / 30.0, "car", None, 1.0, "ref"))
            sub.close()
        agg = MetricsAggregator({})
        server = ClusterMetricsServer(
            agg,
            store_dirs={str(i): str(tmp_path / f"instance-{i}") for i in range(2)},
        ).start()
        try:
            doc = _get_json(f"{server.url}/query?q=count")
            assert doc["count"] == 8
            doc = _get_json(f"{server.url}/query?q=topk&k=2")
            assert {d["stream"] for d in doc["top"]} == {"s0", "s1"}
        finally:
            server.stop()
