"""Cluster serving plane tests.

Layer by layer: the pure policy core (``pick_move`` / ``estimate_headroom``),
the replayable :class:`StreamRouter`, the :class:`DescriptorChannel` handoff
wire, the simulated cluster over virtual clocks, and finally the threaded
end-to-end — two real pipeline-instance processes, a forced load spike, and
a stream observed re-forwarding mid-run with frame conservation across the
handoff.
"""

import dataclasses
import socket
import time

import numpy as np
import pytest

from repro.core.admission import InstanceView, estimate_headroom, pick_move
from repro.core.config import FFSVAConfig
from repro.core.pipeline import StageGraph, ffs_va_graph
from repro.devices.costs import CostModel
from repro.models import ModelZoo
from repro.nn import TrainConfig
from repro.obs import SignalReader, TimeSeriesSampler
from repro.obs.export import parse_prometheus
from repro.runtime.cluster import ClusterSupervisor
from repro.runtime.router import InstanceReport, StreamRouter
from repro.sim import ClusterSimulator
from repro.video import jackson, make_stream
from repro.video.frame import DescriptorChannel, SharedFramePlane

from tests.helpers import make_synth_trace


def view(state="hold", headroom=0.0, costs=()):
    return InstanceView(state=state, headroom=headroom, costs=dict(costs))


# ---------------------------------------------------------------------------
# policy core
# ---------------------------------------------------------------------------
class TestPickMove:
    def test_no_shedder_no_move(self):
        views = [view("admit", 50.0, {"a": 1.0}), view("hold", 10.0, {"b": 1.0})]
        assert pick_move(views) is None

    def test_single_stream_shedder_never_moves(self):
        # Nothing may leave an instance streamless.
        views = [view("shed", 0.0, {"a": 9.0}), view("admit", 50.0, {"b": 1.0})]
        assert pick_move(views) is None

    def test_no_admit_target_no_move(self):
        views = [
            view("shed", 0.0, {"a": 2.0, "b": 1.0}),
            view("hold", 10.0, {"c": 1.0}),
        ]
        assert pick_move(views) is None

    def test_moves_most_expensive_stream_to_most_headroom(self):
        views = [
            view("shed", 0.0, {"cheap": 1.0, "dear": 9.0}),
            view("admit", 20.0, {"x": 1.0}),
            view("admit", 80.0, {"y": 1.0}),
        ]
        move = pick_move(views)
        assert (move.stream, move.src, move.dst) == ("dear", 0, 2)

    def test_most_pressed_shedder_wins(self):
        views = [
            view("shed", 5.0, {"a": 1.0, "b": 1.0}),
            view("shed", 1.0, {"c": 1.0, "d": 2.0}),
            view("admit", 50.0, {"e": 1.0}),
        ]
        move = pick_move(views)
        assert move.src == 1 and move.stream == "d"

    def test_cost_tie_breaks_to_smallest_stream_id(self):
        views = [
            view("shed", 0.0, {"s-b": 3.0, "s-a": 3.0}),
            view("admit", 50.0, {"x": 1.0}),
        ]
        assert pick_move(views).stream == "s-a"

    def test_headroom_tie_breaks_to_lowest_instance(self):
        views = [
            view("shed", 0.0, {"a": 1.0, "b": 2.0}),
            view("admit", 40.0, {"x": 1.0}),
            view("admit", 40.0, {"y": 1.0}),
        ]
        assert pick_move(views).dst == 1


class TestEstimateHeadroom:
    def reader(self, points):
        sampler = TimeSeriesSampler(interval=0.05)
        for t, v in points:
            sampler.observe("stage_fps[tyolo]", t, v, force=True)
        return SignalReader(sampler)

    def test_no_samples_claims_zero(self):
        cfg = FFSVAConfig(admission_tyolo_fps=140.0)
        r = self.reader([])
        assert estimate_headroom(r, cfg, "stage_fps[tyolo]") == 0.0

    def test_headroom_is_threshold_minus_ewma(self):
        cfg = FFSVAConfig(admission_tyolo_fps=140.0, admission_window=5.0)
        r = self.reader([(float(t), 40.0) for t in range(10)])
        assert estimate_headroom(r, cfg, "stage_fps[tyolo]") == pytest.approx(100.0)

    def test_rate_at_or_over_threshold_means_none(self):
        cfg = FFSVAConfig(admission_tyolo_fps=140.0, admission_window=5.0)
        r = self.reader([(float(t), 200.0) for t in range(10)])
        assert estimate_headroom(r, cfg, "stage_fps[tyolo]") == 0.0


# ---------------------------------------------------------------------------
# router
# ---------------------------------------------------------------------------
def report(state="hold", headroom=0.0, costs=(), free_slots=2, outcomes=0, offered=0):
    return InstanceReport(
        state=state,
        headroom=headroom,
        costs=dict(costs),
        free_slots=free_slots,
        outcomes=outcomes,
        offered=offered,
    )


class TestStreamRouter:
    def test_step_records_reports_and_move(self):
        router = StreamRouter()
        move = router.step(
            [
                report("shed", 0.0, {"a": 2.0, "b": 1.0}),
                report("admit", 50.0, {"c": 1.0}),
            ]
        )
        assert (move.stream, move.src, move.dst) == ("a", 0, 1)
        entry = router.log[0]
        assert entry["epoch"] == 0
        assert entry["move"] == {"stream": "a", "src": 0, "dst": 1}
        assert entry["vetoed"] is None
        assert entry["reports"][1]["state"] == "admit"
        assert router.moves() == [("a", 0, 1)]

    def test_full_target_vetoes_but_is_recorded(self):
        router = StreamRouter()
        move = router.step(
            [
                report("shed", 0.0, {"a": 2.0, "b": 1.0}),
                report("admit", 50.0, {"c": 1.0}, free_slots=0),
            ]
        )
        assert move is None
        assert router.moves() == []
        assert router.log[0]["vetoed"] == {"stream": "a", "src": 0, "dst": 1}
        assert router.summary()["vetoed"] == 1

    def test_replay_reproduces_moves_and_vetoes(self):
        router = StreamRouter()
        router.step([report("hold", 0.0, {"a": 1.0}), report("hold", 0.0, {"b": 1.0})])
        router.step(
            [
                report("shed", 0.0, {"a": 2.0, "b": 1.0}),
                report("admit", 50.0, {"c": 1.0}),
            ]
        )
        router.step(
            [
                report("shed", 0.0, {"c": 2.0, "d": 1.0}),
                report("admit", 50.0, {"e": 1.0}, free_slots=0),
            ]
        )
        replayed = StreamRouter.replay(router.log)
        assert replayed.moves() == router.moves()
        assert [e["vetoed"] for e in replayed.log] == [e["vetoed"] for e in router.log]
        assert replayed.summary() == router.summary()


# ---------------------------------------------------------------------------
# handoff wire
# ---------------------------------------------------------------------------
class TestDescriptorChannel:
    def pair(self):
        a, b = socket.socketpair()
        return DescriptorChannel(a), DescriptorChannel(b)

    def test_message_round_trip(self):
        tx, rx = self.pair()
        try:
            tx.send({"cmd": "poll", "free_slots": 2, "costs": {"s": 1.5}})
            msg = rx.recv(timeout=5.0)
            assert msg == {"cmd": "poll", "free_slots": 2, "costs": {"s": 1.5}}
        finally:
            tx.close()
            rx.close()

    def test_eof_returns_none(self):
        tx, rx = self.pair()
        tx.close()
        try:
            assert rx.recv(timeout=5.0) is None
        finally:
            rx.close()

    def test_timeout_raises(self):
        tx, rx = self.pair()
        try:
            with pytest.raises(TimeoutError):
                rx.recv(timeout=0.05)
        finally:
            tx.close()
            rx.close()

    def test_descriptor_survives_the_wire_and_slab(self):
        # The cluster handoff: pixels stay in a SharedFramePlane, only the
        # descriptor crosses the channel.
        block = np.arange(4 * 6 * 8, dtype=np.uint8).reshape(4, 6, 8)
        plane = SharedFramePlane(1, block.nbytes)
        tx, rx = self.pair()
        try:
            slot = plane.acquire(block.nbytes)
            desc = plane.write(slot, block)
            tx.send({"cmd": "attach", "desc": DescriptorChannel.pack_descriptor(desc)})
            msg = rx.recv(timeout=5.0)
            got = DescriptorChannel.unpack_descriptor(msg["desc"])
            assert got == desc
            attached = SharedFramePlane.attach(got.slab)
            np.testing.assert_array_equal(attached.view(got), block)
            attached.close()
        finally:
            tx.close()
            rx.close()
            plane.close()
            plane.unlink()


# ---------------------------------------------------------------------------
# simulated cluster
# ---------------------------------------------------------------------------
def cluster_sim_config(**over):
    base = dict(
        telemetry=True,
        telemetry_sample_interval=0.02,
        cluster_instances=2,
        cluster_reserve_slots=2,
        router_epoch=0.25,
        admission_depth_fraction=0.4,
        admission_window=0.4,
        admission_hysteresis=2,
        admission_tyolo_fps=60.0,
        stream_fps=30.0,
    )
    base.update(over)
    return FFSVAConfig(**base)


#: Cumulative (sdd, snm, tyolo) survival fractions: the hot stream is
#: decisively heavier than the warm one so the cost ranking cannot flip on
#: sampling noise, yet either alone fits a 35 frames/s T-YOLO — only the
#: round-robin pairing of hot+warm on instance 0 overloads it.
HOT, WARM, IDLE = (0.95, 0.9, 0.4), (0.55, 0.5, 0.2), (0.05, 0.02, 0.01)


def skewed_traces(n=240, ids=("s-hot", "s-idle-a", "s-warm", "s-idle-b")):
    """Round-robin pairs one hot + one warm stream on instance 0."""
    return [
        make_synth_trace(n, *frac, seed=1 + i, stream_id=sid)
        for i, (sid, frac) in enumerate(zip(ids, (HOT, IDLE, WARM, IDLE)))
    ]


SLOW_TYOLO = CostModel(tyolo_infer=1.0 / 35)


class TestClusterSimulator:
    def test_overloaded_instance_sheds_hot_stream(self):
        sim = ClusterSimulator(skewed_traces(), cluster_sim_config(), SLOW_TYOLO)
        res = sim.run()
        assert res.moves, "expected at least one shed/re-forward"
        assert res.moves[0] == ("s-hot", 0, 1)

    def test_frame_conservation_across_handoff(self):
        traces = skewed_traces()
        planned = sum(len(tr) for tr in traces)
        res = ClusterSimulator(traces, cluster_sim_config(), SLOW_TYOLO).run()
        assert res.moves
        assert res.total_offered == planned
        # The receiving instance really took the stream on (n_streams counts
        # the attach), and nobody admitted more than it was offered.
        assert [m.n_streams for m in res.instances] == [2, 3]
        for m in res.instances:
            assert 0 < m.frames_ingested <= m.frames_offered

    def test_router_log_replays_deterministically(self):
        res = ClusterSimulator(skewed_traces(), cluster_sim_config(), SLOW_TYOLO).run()
        assert StreamRouter.replay(res.router_log).moves() == res.moves

    def test_no_overload_no_moves(self):
        traces = [
            make_synth_trace(120, 0.05, 0.02, 0.01, seed=i, stream_id=f"s{i}")
            for i in range(4)
        ]
        res = ClusterSimulator(traces, cluster_sim_config()).run()
        assert res.moves == []
        assert res.total_offered == sum(len(tr) for tr in traces)

    def test_requires_a_stream_per_instance(self):
        with pytest.raises(ValueError):
            ClusterSimulator(
                skewed_traces()[:1], cluster_sim_config(cluster_instances=2)
            )


# ---------------------------------------------------------------------------
# threaded end-to-end
# ---------------------------------------------------------------------------
def slow_tyolo_graph(delay: float) -> StageGraph:
    """The paper cascade with T-YOLO slowed to ~1/delay frames/s.

    The sleep releases the GIL, so the load spike is host-speed independent:
    two busy streams exceed the stage's capacity on any machine.
    """
    specs = []
    for spec in ffs_va_graph():
        if spec.name != "tyolo":
            specs.append(spec)
            continue
        inner = spec.logic

        def evaluate(pixels, bundles, zoo, config, _inner=inner.evaluate, _d=delay):
            time.sleep(_d * len(pixels))
            return _inner(pixels, bundles, zoo, config)

        specs.append(
            dataclasses.replace(spec, logic=dataclasses.replace(inner, evaluate=evaluate))
        )
    return StageGraph(specs, name="ffs-va-slow-tyolo")


N_FRAMES = 200


@pytest.fixture(scope="module")
def cluster_fleet():
    """Four trained streams whose round-robin split overloads instance 0."""
    zoo = ModelZoo()
    streams = []
    # i % 2 placement: instance 0 gets {seed 60 (hot), seed 62 (warm)},
    # instance 1 gets the two idle streams.
    for i, tor in enumerate((0.9, 0.05, 0.45, 0.05)):
        s = make_stream(jackson(), N_FRAMES, tor=tor, seed=60 + i)
        zoo.train_for_stream(
            s,
            n_train_frames=80,
            stride=2,
            train_config=TrainConfig(epochs=3, batch_size=32, seed=7),
        )
        streams.append(s)
    return streams, zoo


@pytest.fixture(scope="module")
def threaded_run(cluster_fleet):
    """One shared threaded cluster run (real processes, paced ingest)."""
    streams, zoo = cluster_fleet
    sup = ClusterSupervisor(
        streams, zoo, cluster_sim_config(), graph=slow_tyolo_graph(0.025)
    )
    return streams, sup.run(N_FRAMES, online=True)


class TestClusterThreadedEndToEnd:
    def test_load_spike_reforwards_a_stream_mid_run(self, threaded_run):
        streams, res = threaded_run
        planned = len(streams) * N_FRAMES

        # A move actually happened, and it is the expensive stream leaving
        # the overloaded instance for the idle one.
        assert res.moves, "expected the load spike to force a re-forward"
        hot = streams[0].stream_id
        assert res.moves[0] == (hot, 0, 1)

        # Mid-run: instance 0 delivered a prefix of the hot stream up to the
        # first handoff boundary, instance 1 picked up from exactly there,
        # and between them (the router may legally shuttle the stream again)
        # every index has exactly one owner.
        src_hot = [i for s, i, _ in res.outcomes[0] if s == hot]
        dst_hot = [i for s, i, _ in res.outcomes[1] if s == hot]
        assert src_hot and dst_hot, "handoff should split the stream mid-run"
        boundary = min(dst_hot)
        assert 0 < boundary < N_FRAMES
        assert set(range(boundary)) <= set(src_hot)
        assert sorted(src_hot + dst_hot) == list(range(N_FRAMES))

        # Frame conservation: per instance and globally, every planned
        # frame has exactly one outcome.
        for metrics, outcomes in zip(res.instances, res.outcomes):
            assert metrics.frames_offered == len(outcomes)
        assert res.total_offered == res.total_outcomes == planned
        seen = set()
        for outcomes in res.outcomes:
            for sid, idx, _stage in outcomes:
                assert (sid, idx) not in seen, "frame processed twice"
                seen.add((sid, idx))
        assert len(seen) == planned

    def test_aggregated_metrics_sum_per_instance_ledgers(self, threaded_run):
        streams, res = threaded_run
        samples = parse_prometheus(res.aggregated_metrics)
        total = {
            (name, labels.get("instance")): value
            for name, labels, value in samples
            if name == "ffsva_frames_offered_total"
        }
        for i, m in enumerate(res.instances):
            assert total[("ffsva_frames_offered_total", str(i))] == m.frames_offered
        cluster_sum = [
            value
            for name, labels, value in samples
            if name == "ffsva_cluster_frames_offered_total"
        ]
        assert cluster_sum == [res.total_offered]
        errors = [
            value
            for name, _, value in samples
            if name == "ffsva_cluster_scrape_errors_total"
        ]
        assert errors == [0.0]

    def test_threaded_and_simulated_logs_agree(self, threaded_run):
        """The acceptance contract: equivalent load skew, equivalent logs.

        The simulated twin observes the same shape of world — the same
        stream ids, the same hot/warm/idle skew, a T-YOLO pegged at ~50
        frames/s — and both runtimes must (a) replay their own logs
        deterministically and (b) decide the same first re-forward.
        """
        streams, res = threaded_run
        assert StreamRouter.replay(res.router_log).moves() == res.moves

        ids = tuple(s.stream_id for s in streams)
        traces = skewed_traces(N_FRAMES, ids=ids)
        sim_res = ClusterSimulator(traces, cluster_sim_config(), SLOW_TYOLO).run()
        assert StreamRouter.replay(sim_res.router_log).moves() == sim_res.moves
        assert sim_res.moves and res.moves
        assert sim_res.moves[0] == res.moves[0]
        # Both logs veto or move through the identical report schema.
        for log in (res.router_log, sim_res.router_log):
            assert all(
                set(entry) == {"epoch", "reports", "move", "vetoed"} for entry in log
            )
