"""Threaded-runtime tests for batch policies, online pacing, and flushing."""

import numpy as np
import pytest

from repro.core import FFSVAConfig
from repro.models import ModelZoo
from repro.nn import TrainConfig
from repro.runtime import ThreadedPipeline
from repro.video import jackson, make_streams


@pytest.fixture(scope="module")
def trained():
    streams = make_streams(jackson(), 2, 800, tor=0.35, seed=91)
    zoo = ModelZoo()
    for s in streams:
        zoo.train_for_stream(
            s,
            n_train_frames=200,
            stride=2,
            train_config=TrainConfig(epochs=8, batch_size=32, seed=5),
        )
    return streams, zoo


def run_policy(streams, zoo, policy, batch_size=6, n_frames=150, **kw):
    cfg = FFSVAConfig(batch_policy=policy, batch_size=batch_size, **kw)
    pipe = ThreadedPipeline(streams, zoo, cfg)
    metrics = pipe.run(n_frames=n_frames)
    return pipe, metrics


class TestBatchPoliciesThreaded:
    @pytest.mark.parametrize("policy", ["static", "feedback", "dynamic"])
    def test_all_policies_complete(self, trained, policy):
        streams, zoo = trained
        pipe, m = run_policy(streams, zoo, policy)
        assert len(pipe.outcomes) == 2 * 150
        m.check_conservation()

    def test_partial_tail_batch_flushes(self, trained):
        # 151 frames with batch 20: the last partial batch must still flush.
        streams, zoo = trained
        pipe, _ = run_policy(streams[:1], zoo, "static", batch_size=20, n_frames=151)
        assert len(pipe.outcomes) == 151

    def test_policies_agree_on_decisions(self, trained):
        """Batching changes scheduling, never filtering decisions."""
        streams, zoo = trained
        results = {}
        for policy in ("static", "feedback", "dynamic"):
            pipe, _ = run_policy(streams[:1], zoo, policy, n_frames=120)
            results[policy] = {
                (o.index, o.stage) for o in pipe.outcomes
            }
        assert results["static"] == results["feedback"] == results["dynamic"]


class TestOnlineThreaded:
    def test_paced_run_completes(self, trained):
        streams, zoo = trained
        cfg = FFSVAConfig(batch_policy="dynamic", batch_size=6)
        pipe = ThreadedPipeline(streams, zoo, cfg)
        # Pace far above real time so the test stays fast but the paced
        # code path (sleep-until-arrival) is exercised.
        m = pipe.run(n_frames=90, online=True, paced_fps=600.0)
        assert len(pipe.outcomes) == 2 * 90
        assert m.duration >= 90 / 600.0

    def test_relax_recovers_frames(self, trained):
        streams, zoo = trained
        strict_pipe, _ = run_policy(
            streams[:1], zoo, "dynamic", n_frames=150, number_of_objects=2, relax=0
        )
        relaxed_pipe, _ = run_policy(
            streams[:1], zoo, "dynamic", n_frames=150, number_of_objects=2, relax=1
        )
        strict_ref = sum(1 for o in strict_pipe.outcomes if o.stage == "ref")
        relaxed_ref = sum(1 for o in relaxed_pipe.outcomes if o.stage == "ref")
        assert relaxed_ref >= strict_ref
