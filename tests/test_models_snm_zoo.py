"""Tests for the SNM classifier, threshold calibration, and the model zoo."""

import numpy as np
import pytest

from repro.models import ModelZoo, SNMConfig
from repro.models.snm import SNM, build_snm_network, train_snm
from repro.nn import TrainConfig
from repro.video import jackson, make_stream


@pytest.fixture(scope="module")
def stream():
    return make_stream(jackson(), 2400, tor=0.3, seed=41)


@pytest.fixture(scope="module")
def zoo_and_bundle(stream):
    zoo = ModelZoo()
    bundle = zoo.train_for_stream(
        stream,
        n_train_frames=350,
        stride=2,
        train_config=TrainConfig(epochs=12, batch_size=32, lr=0.05, seed=2),
    )
    return zoo, bundle


class TestSNMArchitecture:
    def test_three_layer_structure(self):
        net = build_snm_network(SNMConfig())
        from repro.nn import Conv2D, Dense

        convs = [l for l in net.layers if isinstance(l, Conv2D)]
        denses = [l for l in net.layers if isinstance(l, Dense)]
        assert len(convs) == 2  # CONV, CONV
        assert len(denses) == 1  # FC

    def test_memory_footprint_small(self):
        # The paper quotes ~200 KB; our float32 parameters must fit in that.
        net = build_snm_network(SNMConfig())
        assert net.n_parameters() * 4 < 200 * 1024

    def test_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            build_snm_network(SNMConfig(input_size=8))

    def test_forward_shape(self):
        cfg = SNMConfig()
        net = build_snm_network(cfg)
        x = np.zeros((3, 1, cfg.input_size, cfg.input_size), dtype=np.float32)
        assert net.forward(x).shape == (3, 2)


class TestSNMBehaviour:
    def test_requires_background(self):
        snm = SNM(build_snm_network(SNMConfig()))
        with pytest.raises(RuntimeError):
            snm.preprocess(np.zeros((2, 30, 30), dtype=np.float32))

    def test_preprocess_shape(self):
        cfg = SNMConfig()
        snm = SNM(build_snm_network(cfg), cfg, background=np.full((40, 60), 0.5))
        out = snm.preprocess(np.zeros((4, 40, 60), dtype=np.float32))
        assert out.shape == (4, 1, cfg.input_size, cfg.input_size)

    def test_preprocess_background_frame_is_near_zero(self):
        bg = np.random.default_rng(0).random((40, 60)).astype(np.float32) * 0.3 + 0.3
        snm = SNM(build_snm_network(SNMConfig()), background=bg)
        out = snm.preprocess(bg)
        assert np.abs(out).mean() < 0.05

    def test_t_pre_interpolates(self):
        snm = SNM(build_snm_network(SNMConfig()))
        snm.c_low, snm.c_high = 0.2, 0.8
        assert snm.t_pre(0.0) == pytest.approx(0.2)
        assert snm.t_pre(1.0) == pytest.approx(0.8)
        assert snm.t_pre(0.5) == pytest.approx(0.5)

    def test_t_pre_rejects_out_of_range(self):
        snm = SNM(build_snm_network(SNMConfig()))
        with pytest.raises(ValueError):
            snm.t_pre(1.2)
        with pytest.raises(ValueError):
            snm.t_pre(-0.1)

    def test_passes_monotone_in_filter_degree(self):
        snm = SNM(build_snm_network(SNMConfig()))
        snm.c_low, snm.c_high = 0.1, 0.9
        probs = np.linspace(0, 1, 101)
        prev = snm.passes(probs, 0.0).sum()
        for fd in (0.25, 0.5, 0.75, 1.0):
            cur = snm.passes(probs, fd).sum()
            assert cur <= prev
            prev = cur

    def test_calibrate_rejects_mismatch(self):
        snm = SNM(build_snm_network(SNMConfig()), background=np.full((30, 30), 0.5))
        with pytest.raises(ValueError):
            snm.calibrate_thresholds(np.zeros((3, 30, 30)), np.zeros(2))

    def test_train_rejects_mismatch(self):
        with pytest.raises(ValueError):
            train_snm(np.zeros((3, 30, 30)), np.zeros(2), np.zeros((30, 30)))


class TestTrainedSNM(object):
    def test_accuracy_versus_reference_labels(self, stream, zoo_and_bundle):
        zoo, bundle = zoo_and_bundle
        ts = np.arange(1400, 2400, 4)
        px = stream.pixel_batch(ts)
        labels = zoo.reference.label_frames(px, bundle.background)
        probs = bundle.snm.predict_proba(px)
        acc = ((probs > bundle.snm.t_pre(0.5)).astype(int) == labels).mean()
        assert acc > 0.85

    def test_thresholds_ordered(self, zoo_and_bundle):
        _, bundle = zoo_and_bundle
        assert 0.0 <= bundle.snm.c_low < bundle.snm.c_high <= 1.0

    def test_probs_in_unit_interval(self, stream, zoo_and_bundle):
        _, bundle = zoo_and_bundle
        probs = bundle.snm.predict_proba(stream.pixel_batch(np.arange(0, 100, 10)))
        assert probs.min() >= 0.0 and probs.max() <= 1.0

    def test_keep_fraction_decreases_with_filter_degree(self, stream, zoo_and_bundle):
        _, bundle = zoo_and_bundle
        probs = bundle.snm.predict_proba(stream.pixel_batch(np.arange(1200, 2200, 5)))
        keeps = [bundle.snm.passes(probs, fd).mean() for fd in (0.0, 0.5, 1.0)]
        assert keeps[0] >= keeps[1] >= keeps[2]


class TestModelZoo:
    def test_bundle_registered(self, stream, zoo_and_bundle):
        zoo, bundle = zoo_and_bundle
        assert stream.stream_id in zoo
        assert zoo[stream.stream_id] is bundle

    def test_train_info_populated(self, zoo_and_bundle):
        _, bundle = zoo_and_bundle
        info = bundle.train_info
        assert info["n_labelled"] > 0
        assert 0.0 <= info["positive_rate"] <= 1.0
        assert info["sdd_threshold"] > 0.0

    def test_memory_footprint(self, zoo_and_bundle):
        zoo, _ = zoo_and_bundle
        fp = zoo.memory_footprint()
        assert fp["tyolo"] == int(1.2 * 2**30)
        assert fp["snm_total"] >= 200 * 1024

    def test_rejects_too_short_stream(self):
        zoo = ModelZoo()
        short = make_stream(jackson(), 10, tor=0.5, seed=1)
        with pytest.raises(ValueError):
            zoo.train_for_stream(short)

    def test_sdd_threshold_positive(self, zoo_and_bundle):
        _, bundle = zoo_and_bundle
        assert bundle.sdd.threshold > 0
