"""Tests for scene scripting, TOR targeting, and ground-truth analytics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.frame import GroundTruthObject
from repro.video.scene import (
    ObjectTrack,
    SceneScript,
    make_script,
    scenes_from_counts,
)


def _track(**kw):
    defaults = dict(
        kind="car",
        t_enter=10,
        duration=50,
        x0=-20.0,
        y0=50.0,
        x1=170.0,
        y1=50.0,
        w=30.0,
        h=20.0,
        intensity=0.35,
    )
    defaults.update(kw)
    return ObjectTrack(**defaults)


class TestObjectTrack:
    def test_inactive_before_enter(self):
        assert _track().position(9) is None

    def test_inactive_after_exit(self):
        assert _track().position(61) is None

    def test_position_endpoints(self):
        tr = _track()
        assert tr.position(10) == pytest.approx((-20.0, 50.0))
        assert tr.position(60) == pytest.approx((170.0, 50.0))

    def test_position_midpoint(self):
        tr = _track(wobble=0.0)
        cx, cy = tr.position(35)
        assert cx == pytest.approx(75.0)
        assert cy == pytest.approx(50.0)

    def test_annotation_visibility_partial_at_entry(self):
        tr = _track()
        ann = tr.annotation(10, height=100, width=150)
        # Object centered at x=-20 with w=30 is fully off-screen.
        assert ann is None

    def test_annotation_full_visibility_in_middle(self):
        tr = _track(wobble=0.0)
        ann = tr.annotation(35, height=100, width=150)
        assert ann is not None
        assert ann.visibility == pytest.approx(1.0)

    def test_annotation_kind_propagates(self):
        ann = _track(kind="person", wobble=0.0).annotation(35, 100, 150)
        assert ann.kind == "person"

    def test_zero_duration_track(self):
        tr = _track(duration=0, x0=75.0, x1=75.0)
        assert tr.position(10) == pytest.approx((75.0, 50.0))


class TestSceneScript:
    def test_annotations_match_gt_counts(self):
        script = make_script(500, 0.3, seed=3)
        counts = script.gt_counts()
        for t in range(0, 500, 37):
            visible = [
                a for a in script.annotations(t) if a.visibility >= 0.25
            ]
            assert len(visible) == counts[t]

    def test_empty_script_tor_zero(self):
        script = SceneScript(n_frames=100, height=50, width=50, kind="car")
        assert script.tor() == 0.0
        assert script.scenes() == []

    def test_gt_counts_length(self):
        script = make_script(321, 0.2, seed=1)
        assert len(script.gt_counts()) == 321

    def test_scenes_partition_target_frames(self):
        script = make_script(2000, 0.25, seed=5)
        counts = script.gt_counts()
        scenes = script.scenes()
        covered = np.zeros(2000, dtype=bool)
        for start, stop in scenes:
            assert stop > start
            assert np.all(counts[start:stop] > 0)
            covered[start:stop] = True
        assert np.array_equal(covered, counts > 0)

    def test_scenes_are_maximal(self):
        script = make_script(2000, 0.25, seed=6)
        counts = script.gt_counts()
        for start, stop in script.scenes():
            if start > 0:
                assert counts[start - 1] == 0
            if stop < len(counts):
                assert counts[stop] == 0


class TestScenesFromCounts:
    def test_empty(self):
        assert scenes_from_counts(np.array([])) == []

    def test_all_zero(self):
        assert scenes_from_counts(np.zeros(10)) == []

    def test_all_positive(self):
        assert scenes_from_counts(np.ones(5)) == [(0, 5)]

    def test_two_runs(self):
        counts = np.array([0, 1, 2, 0, 0, 3, 0])
        assert scenes_from_counts(counts) == [(1, 3), (5, 6)]

    def test_run_at_edges(self):
        counts = np.array([1, 0, 1])
        assert scenes_from_counts(counts) == [(0, 1), (2, 3)]

    @given(st.lists(st.integers(0, 3), min_size=0, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_property_reconstruction(self, counts):
        counts = np.asarray(counts, dtype=np.int64)
        mask = np.zeros(len(counts), dtype=bool)
        for start, stop in scenes_from_counts(counts):
            assert 0 <= start < stop <= len(counts)
            mask[start:stop] = True
        assert np.array_equal(mask, counts > 0)


class TestMakeScript:
    def test_rejects_bad_tor(self):
        with pytest.raises(ValueError):
            make_script(100, 1.5)
        with pytest.raises(ValueError):
            make_script(100, -0.1)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            make_script(0, 0.5)

    def test_deterministic_in_seed(self):
        a = make_script(800, 0.3, seed=42)
        b = make_script(800, 0.3, seed=42)
        assert a.tracks == b.tracks

    def test_different_seeds_differ(self):
        a = make_script(800, 0.3, seed=1)
        b = make_script(800, 0.3, seed=2)
        assert a.tracks != b.tracks

    def test_zero_tor_has_no_tracks(self):
        assert make_script(500, 0.0, seed=0).tracks == ()

    @pytest.mark.parametrize("tor", [0.05, 0.1, 0.25, 0.5, 0.8, 1.0])
    def test_tor_targeting(self, tor):
        script = make_script(4000, tor, seed=9)
        assert abs(script.tor() - tor) < 0.06

    def test_person_kind(self):
        script = make_script(1000, 0.4, kind="person", seed=4, max_objects=6)
        assert script.kind == "person"
        assert all(tr.kind == "person" for tr in script.tracks)

    def test_counts_can_exceed_one(self):
        script = make_script(3000, 0.6, seed=10, max_objects=4)
        assert script.gt_counts().max() >= 2


class TestGroundTruthObject:
    def test_bbox(self):
        obj = GroundTruthObject("car", 50, 40, 20, 10)
        assert obj.bbox() == (40, 35, 60, 45)

    def test_clipped_bbox(self):
        obj = GroundTruthObject("car", 5, 5, 20, 20)
        x0, y0, x1, y1 = obj.clipped_bbox(100, 100)
        assert (x0, y0) == (0, 0)
        assert (x1, y1) == (15, 15)
