"""Tests for the stage-graph control plane (repro.core.pipeline)."""

import numpy as np
import pytest

from repro.core import FFSVAConfig
from repro.core.pipeline import (
    CASCADES,
    MERGED,
    PER_STREAM,
    REF,
    SDD,
    SHARED_RR,
    SNM,
    STAGES,
    TYOLO,
    BatchRule,
    StageGraph,
    StageLogic,
    StageSpec,
    arbitration_batch,
    cascade,
    effective_batch,
    ffs_va_graph,
    ref_spec,
    sdd_spec,
    snm_spec,
    tyolo_spec,
)
from repro.core.trace import FrameTrace


def _trace(n=60, seed=0):
    rng = np.random.default_rng(seed)
    return FrameTrace(
        stream_id=f"t{seed}",
        kind="car",
        fps=30.0,
        sdd_dist=rng.uniform(0.0, 1.0, n),
        sdd_threshold=0.5,
        snm_prob=rng.uniform(0.0, 1.0, n).astype(np.float32),
        c_low=0.2,
        c_high=0.8,
        tyolo_count=rng.integers(0, 3, n),
        gt_count=rng.integers(0, 3, n),
    )


class TestBatchRule:
    def test_valid_kinds(self):
        for kind in ("fixed", "config", "rr_cap"):
            assert BatchRule(kind, 4).kind == kind

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            BatchRule("adaptive")

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError, match="size"):
            BatchRule("fixed", 0)


class TestStageSpec:
    def test_depth_key_defaults_to_name(self):
        assert sdd_spec().depth_key == SDD

    def test_queue_key_overrides_depth_key(self):
        spec = StageSpec(
            name="blur",
            device="cpu0",
            fan_in=PER_STREAM,
            batch=BatchRule("fixed", 8),
            logic=ref_spec().logic,
            queue_key=SNM,
        )
        assert spec.depth_key == SNM

    def test_aborted_is_not_a_valid_stage_name(self):
        with pytest.raises(ValueError):
            StageSpec(
                name="aborted",
                device="cpu0",
                fan_in=PER_STREAM,
                batch=BatchRule("fixed", 1),
                logic=ref_spec().logic,
            )

    def test_bad_fan_in_rejected(self):
        with pytest.raises(ValueError, match="fan_in"):
            StageSpec(
                name="x",
                device="cpu0",
                fan_in="broadcast",
                batch=BatchRule("fixed", 1),
                logic=ref_spec().logic,
            )


class TestStageGraph:
    def test_default_graph_matches_canonical_stages(self):
        g = ffs_va_graph()
        assert g.names == STAGES == (SDD, SNM, TYOLO, REF)
        assert g.first.name == SDD
        assert g.terminal.name == REF and g.terminal.terminal

    def test_fan_in_modes_of_the_paper(self):
        g = ffs_va_graph()
        assert g[SDD].fan_in == PER_STREAM
        assert g[SNM].fan_in == PER_STREAM
        assert g[TYOLO].fan_in == SHARED_RR
        assert g[REF].fan_in == MERGED

    def test_next_and_upstream(self):
        g = ffs_va_graph()
        assert g.next(SDD).name == SNM
        assert g.next(REF) is None
        assert tuple(s.name for s in g.upstream(TYOLO)) == (SDD, SNM)
        assert g.upstream(SDD) == ()

    def test_container_protocol(self):
        g = ffs_va_graph()
        assert len(g) == 4
        assert TYOLO in g and "warp" not in g
        assert g[1].name == SNM  # int indexing
        assert [s.name for s in g] == list(STAGES)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            StageGraph([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            StageGraph([sdd_spec(), sdd_spec(), ref_spec()])

    def test_terminal_must_be_last(self):
        with pytest.raises(ValueError, match="terminal"):
            StageGraph([ref_spec(), sdd_spec()])
        with pytest.raises(ValueError, match="terminal"):
            StageGraph([sdd_spec(), snm_spec()])

    def test_default_placement_map(self):
        assert ffs_va_graph().default_placement_map() == {
            SDD: ["cpu0"],
            SNM: ["gpu0"],
            TYOLO: ["gpu0"],
            REF: ["gpu1"],
        }


class TestCascadeRegistry:
    def test_known_compositions(self):
        assert cascade("ffs-va").names == (SDD, SNM, TYOLO, REF)
        assert cascade("no-sdd").names == (SNM, TYOLO, REF)
        assert cascade("no-snm").names == (SDD, TYOLO, REF)
        assert cascade("snm-only").names == (SNM, REF)
        assert cascade("tyolo-only").names == (TYOLO, REF)
        assert cascade("ref-only").names == (REF,)

    def test_none_resolves_to_default(self):
        assert cascade(None) is CASCADES["ffs-va"]

    def test_graph_passthrough(self):
        g = StageGraph([snm_spec(), ref_spec()], name="mine")
        assert cascade(g) is g

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="snm-only"):
            cascade("warp-cascade")

    def test_config_selects_cascade(self):
        cfg = FFSVAConfig(cascade="no-sdd")
        assert cfg.graph().names == (SNM, TYOLO, REF)
        with pytest.raises(ValueError, match="cascade"):
            FFSVAConfig(cascade="nope")


class TestTraceMasks:
    def test_cascade_mask_is_conjunction(self):
        tr = _trace()
        cfg = FFSVAConfig()
        g = ffs_va_graph()
        masks = g.trace_masks(tr, cfg)
        expected = (
            masks[SDD] & masks[SNM] & masks[TYOLO] & masks[REF]
        )
        assert np.array_equal(g.cascade_mask(tr, cfg), expected)
        assert np.array_equal(
            g.cascade_mask(tr, cfg),
            tr.cascade_pass(cfg.filter_degree, cfg.number_of_objects, cfg.relax),
        )

    def test_stage_fractions_monotone_and_start_at_one(self):
        tr = _trace(seed=3)
        cfg = FFSVAConfig()
        fr = ffs_va_graph().stage_fractions(tr, cfg)
        vals = [fr[s] for s in STAGES]
        assert vals[0] == 1.0
        assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_dropping_a_filter_passes_more_frames(self):
        tr = _trace(seed=5)
        cfg = FFSVAConfig()
        full = ffs_va_graph().cascade_mask(tr, cfg).sum()
        no_snm = cascade("no-snm").cascade_mask(tr, cfg).sum()
        assert no_snm >= full


class TestBatchHelpers:
    def test_effective_batch_config_policy(self):
        snm = snm_spec()
        assert effective_batch(snm, FFSVAConfig(batch_policy="static", batch_size=30)) == 30
        # Dynamic/feedback cap at the queue depth threshold (default 10).
        assert effective_batch(snm, FFSVAConfig(batch_policy="dynamic", batch_size=30)) == 10

    def test_effective_batch_rr_cap_and_fixed(self):
        cfg = FFSVAConfig(num_t_yolo=3)
        assert effective_batch(tyolo_spec(), cfg) == 3
        assert effective_batch(sdd_spec(), cfg) == 16
        assert effective_batch(ref_spec(), cfg) == 1

    def test_arbitration_batch(self):
        cfg = FFSVAConfig(batch_size=7, num_t_yolo=2)
        assert arbitration_batch(snm_spec(), cfg) == 7
        assert arbitration_batch(tyolo_spec(), cfg) == 2
        assert arbitration_batch(sdd_spec(), cfg) == 16


class TestCustomStageCosts:
    def test_canonical_stages_resolve_by_name(self):
        from repro.core.pipeline import stage_per_frame_time, stage_service_time
        from repro.devices.costs import CostModel

        costs = CostModel()
        assert stage_service_time(snm_spec(), costs, 8) == costs.service_time(SNM, 8)
        assert stage_per_frame_time(snm_spec(), costs, 8) == costs.per_frame_time(SNM, 8)

    def test_custom_cost_pair_wins(self):
        from repro.core.pipeline import stage_service_time
        from repro.devices.costs import CostModel

        spec = StageSpec(
            name="blur",
            device="cpu0",
            fan_in=PER_STREAM,
            batch=BatchRule("fixed", 4),
            logic=ref_spec().logic,
            cost=(1e-3, 1e-4),
        )
        assert stage_service_time(spec, CostModel(), 5) == pytest.approx(1e-3 + 5e-4)

    def test_invalid_cost_rejected(self):
        with pytest.raises(ValueError, match="cost"):
            StageSpec(
                name="blur",
                device="cpu0",
                fan_in=PER_STREAM,
                batch=BatchRule("fixed", 4),
                logic=ref_spec().logic,
                cost=(-1.0, 1e-4),
            )

    def test_custom_stage_runs_in_the_simulator(self):
        from repro.core.pipeline import tyolo_spec
        from repro.sim import PipelineSimulator
        from tests.helpers import make_synth_trace

        blur = StageSpec(
            name="blur",
            device="cpu0",
            fan_in=PER_STREAM,
            batch=BatchRule("fixed", 8),
            logic=StageLogic(
                evaluate=lambda px, b, z, c: (np.ones(len(px), dtype=bool), None),
                trace_mask=lambda t, c: np.arange(len(t)) % 2 == 0,
            ),
            queue_key=SNM,
            cost=(0.0, 1e-4),
        )
        graph = StageGraph([blur, tyolo_spec(), ref_spec()], name="blur-cascade")
        traces = [make_synth_trace(300, 1.0, 1.0, 0.9, seed=i) for i in range(2)]
        m = PipelineSimulator(traces, FFSVAConfig(), online=False, graph=graph).run()
        m.check_conservation()
        assert set(m.stages) == {"blur", "tyolo", "ref"}
        assert m.stages["blur"].entered == 600
        assert m.stages["blur"].passed == 300  # every other frame


class TestStageLogicSeam:
    def test_custom_stage_runs_in_a_graph(self):
        tr = _trace()
        cfg = FFSVAConfig()
        even = StageSpec(
            name="even",
            device="cpu0",
            fan_in=PER_STREAM,
            batch=BatchRule("fixed", 8),
            logic=StageLogic(
                evaluate=lambda px, b, z, c: (np.ones(len(px), dtype=bool), None),
                trace_mask=lambda t, c: np.arange(len(t)) % 2 == 0,
            ),
            queue_key=SNM,
        )
        g = StageGraph([even, ref_spec()], name="even-only")
        assert g.cascade_mask(tr, cfg).sum() == (len(tr) + 1) // 2
