"""Tests for FrameTrace decisions, transforms, and trace building."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trace import FrameTrace, build_trace
from repro.core.tracecache import cached_trace
from repro.models import ModelZoo
from repro.video import jackson, make_stream

from tests.helpers import make_synth_trace


@pytest.fixture(scope="module")
def real_trace():
    stream = make_stream(jackson(), 900, tor=0.3, seed=51)
    return build_trace(stream, ModelZoo(), with_ref=True, n_train_frames=200)


class TestFrameTraceDecisions:
    def test_length(self):
        tr = make_synth_trace(100, 0.7, 0.3, 0.1)
        assert len(tr) == 100

    def test_nested_survival(self):
        tr = make_synth_trace(2000, 0.7, 0.3, 0.1, seed=1)
        sdd = tr.sdd_pass()
        snm = tr.snm_pass(0.5)
        ty = tr.tyolo_pass()
        assert np.all(snm <= sdd | snm)  # snm survivors are sdd survivors
        assert (sdd & snm & ty).sum() == tr.cascade_pass(0.5).sum()

    def test_t_pre_equation(self):
        tr = make_synth_trace(10, 0.5, 0.3, 0.1)
        assert tr.t_pre(0.0) == pytest.approx(tr.c_low)
        assert tr.t_pre(1.0) == pytest.approx(tr.c_high)
        assert tr.t_pre(0.5) == pytest.approx((tr.c_low + tr.c_high) / 2)

    def test_t_pre_rejects_out_of_range(self):
        tr = make_synth_trace(10, 0.5, 0.3, 0.1)
        with pytest.raises(ValueError):
            tr.t_pre(-0.1)

    @given(fd=st.floats(0.0, 1.0), fd2=st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_property_filter_degree_monotone(self, fd, fd2):
        tr = make_synth_trace(500, 0.8, 0.4, 0.2, seed=3)
        lo, hi = sorted([fd, fd2])
        assert tr.snm_pass(hi).sum() <= tr.snm_pass(lo).sum()

    @given(n1=st.integers(1, 5), n2=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_property_number_of_objects_monotone(self, n1, n2):
        tr = make_synth_trace(500, 0.8, 0.4, 0.2, seed=4)
        lo, hi = sorted([n1, n2])
        assert tr.tyolo_pass(hi).sum() <= tr.tyolo_pass(lo).sum()

    def test_relax_monotone(self):
        tr = make_synth_trace(500, 0.8, 0.4, 0.2, seed=5)
        base = tr.tyolo_pass(3, relax=0).sum()
        relaxed = tr.tyolo_pass(3, relax=1).sum()
        assert relaxed >= base

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            FrameTrace(
                "s", "car", 30.0,
                sdd_dist=np.zeros(5),
                sdd_threshold=0.5,
                snm_prob=np.zeros(4, dtype=np.float32),
                c_low=0.2, c_high=0.8,
                tyolo_count=np.zeros(5, dtype=np.int64),
                gt_count=np.zeros(5, dtype=np.int64),
            )


class TestTraceTransforms:
    def test_rotation_preserves_statistics(self):
        tr = make_synth_trace(300, 0.7, 0.3, 0.1, seed=6)
        rot = tr.rotated(100)
        assert len(rot) == len(tr)
        assert rot.sdd_pass().sum() == tr.sdd_pass().sum()
        assert rot.tor() == pytest.approx(tr.tor())

    def test_rotation_shifts_content(self):
        tr = make_synth_trace(300, 0.7, 0.3, 0.1, seed=7)
        rot = tr.rotated(13)
        np.testing.assert_array_equal(rot.sdd_dist, np.roll(tr.sdd_dist, -13))

    def test_slice(self):
        tr = make_synth_trace(300, 0.7, 0.3, 0.1, seed=8)
        part = tr.sliced(50, 120)
        assert len(part) == 70
        np.testing.assert_array_equal(part.snm_prob, tr.snm_prob[50:120])

    def test_slice_rejects_bad_bounds(self):
        tr = make_synth_trace(10, 0.5, 0.3, 0.1)
        with pytest.raises(ValueError):
            tr.sliced(5, 20)

    def test_renamed(self):
        tr = make_synth_trace(10, 0.5, 0.3, 0.1)
        assert tr.renamed("other").stream_id == "other"


class TestBuildTrace:
    def test_trace_fields_populated(self, real_trace):
        tr = real_trace
        assert len(tr) == 900
        assert tr.ref_count is not None
        assert tr.sdd_threshold > 0
        assert 0 <= tr.c_low < tr.c_high <= 1

    def test_decisions_consistent_with_models(self, real_trace):
        # SDD pass fraction should be strictly between nothing and everything
        # for a 0.3 TOR clip, and the cascade should shrink monotonically.
        tr = real_trace
        n = len(tr)
        n_sdd = tr.sdd_pass().sum()
        n_casc = tr.cascade_pass(0.5).sum()
        assert 0 < n_casc <= n_sdd < n

    def test_tor_close_to_target(self, real_trace):
        assert abs(real_trace.tor() - 0.3) < 0.1

    def test_cache_roundtrip(self, tmp_path, monkeypatch, real_trace):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        calls = {"n": 0}

        def builder():
            calls["n"] += 1
            return real_trace

        params = {"test": "roundtrip"}
        t1 = cached_trace(params, builder)
        t2 = cached_trace(params, builder)
        assert calls["n"] == 1
        np.testing.assert_array_equal(t1.snm_prob, t2.snm_prob)
        np.testing.assert_array_equal(t1.ref_count, t2.ref_count)
        assert t2.c_low == pytest.approx(real_trace.c_low)

    def test_cache_off(self, monkeypatch, real_trace):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        calls = {"n": 0}

        def builder():
            calls["n"] += 1
            return real_trace

        cached_trace({"k": 1}, builder)
        cached_trace({"k": 1}, builder)
        assert calls["n"] == 2

    def test_distinct_params_distinct_entries(self, tmp_path, monkeypatch, real_trace):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        calls = {"n": 0}

        def builder():
            calls["n"] += 1
            return real_trace

        cached_trace({"k": 1}, builder)
        cached_trace({"k": 2}, builder)
        assert calls["n"] == 2


class TestMosaicRegions:
    def test_built_traces_record_regions(self, real_trace):
        r = real_trace.mosaic_regions
        assert r is not None and r.ndim == 2 and r.shape[1] == 5
        assert len(r) > 0
        assert 0 <= r[:, 0].min() and r[:, 0].max() < len(real_trace)
        assert np.all(r[:, 1] < r[:, 3]) and np.all(r[:, 2] < r[:, 4])

    def test_regions_by_frame_partitions_the_table(self, real_trace):
        by_frame = real_trace.regions_by_frame()
        assert len(by_frame) == len(real_trace)
        assert sum(len(b) for b in by_frame) == len(real_trace.mosaic_regions)
        want = {
            (int(f), int(a), int(b), int(c), int(d))
            for f, a, b, c, d in real_trace.mosaic_regions
        }
        got = {
            (i, int(a), int(b), int(c), int(d))
            for i, boxes in enumerate(by_frame)
            for a, b, c, d in boxes
        }
        assert got == want

    def test_unrecorded_regions_stay_none(self):
        tr = make_synth_trace(20, 0.7, 0.3, 0.1)
        assert tr.mosaic_regions is None
        assert tr.regions_by_frame() is None
        assert tr.rotated(3).mosaic_regions is None
        assert tr.sliced(0, 5).mosaic_regions is None

    def test_rotation_remaps_frame_indices(self, real_trace):
        n = len(real_trace)
        rot = real_trace.rotated(137)
        base = real_trace.regions_by_frame()
        moved = rot.regions_by_frame()
        for i in range(0, n, 97):
            np.testing.assert_array_equal(moved[i], base[(i + 137) % n])

    def test_slice_filters_and_shifts(self, real_trace):
        part = real_trace.sliced(100, 400)
        base = real_trace.regions_by_frame()
        got = part.regions_by_frame()
        assert len(got) == 300
        for i in range(0, 300, 50):
            np.testing.assert_array_equal(got[i], base[100 + i])

    def test_cache_round_trips_regions(self, tmp_path, monkeypatch, real_trace):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        t1 = cached_trace({"mosaic": "rt"}, lambda: real_trace)
        t2 = cached_trace({"mosaic": "rt"}, lambda: real_trace)
        np.testing.assert_array_equal(t1.mosaic_regions, t2.mosaic_regions)

    def test_cache_round_trips_none_regions(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        tr = make_synth_trace(20, 0.7, 0.3, 0.1)
        t2 = cached_trace({"mosaic": "none"}, lambda: tr)
        t2 = cached_trace({"mosaic": "none"}, lambda: tr)
        assert t2.mosaic_regions is None

    def test_bad_shapes_rejected(self):
        tr = make_synth_trace(10, 0.5, 0.3, 0.1)
        from dataclasses import replace

        with pytest.raises(ValueError):
            replace(tr, mosaic_regions=np.zeros((3, 4), dtype=np.int64))
        bad_frame = np.array([[10, 0, 0, 1, 1]], dtype=np.int64)
        with pytest.raises(ValueError):
            replace(tr, mosaic_regions=bad_frame)
