"""Layer-level tests: shapes, reference implementations, and gradient checks."""

import numpy as np
import pytest
from scipy import signal

from repro.nn import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
)
from repro.nn.layers import col2im, im2col


def to_float64(*layers):
    """Promote layer parameters/gradients to float64 for numerical checks."""
    for layer in layers:
        for obj in (getattr(layer, "layers", None) or [layer]):
            obj.params = {k: v.astype(np.float64) for k, v in obj.params.items()}
            obj.grads = {k: np.zeros_like(v) for k, v in obj.params.items()}


def numerical_grad(f, x, eps=1e-4):
    """Central-difference gradient of scalar function ``f`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = f()
        x[idx] = orig - eps
        fm = f()
        x[idx] = orig
        grad[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad


class TestIm2Col:
    def test_shapes(self):
        x = np.arange(2 * 3 * 6 * 8, dtype=np.float32).reshape(2, 3, 6, 8)
        cols, oh, ow = im2col(x, 3, 3, 1, 0)
        assert (oh, ow) == (4, 6)
        assert cols.shape == (2 * 4 * 6, 3 * 9)

    def test_stride_and_pad(self):
        x = np.ones((1, 1, 5, 5), dtype=np.float32)
        cols, oh, ow = im2col(x, 3, 3, 2, 1)
        assert (oh, ow) == (3, 3)

    def test_patch_contents(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        cols, oh, ow = im2col(x, 2, 2, 2, 0)
        # First patch is the top-left 2x2 block.
        np.testing.assert_array_equal(cols[0], [0, 1, 4, 5])
        np.testing.assert_array_equal(cols[-1], [10, 11, 14, 15])

    def test_too_large_kernel_raises(self):
        with pytest.raises(ValueError):
            im2col(np.ones((1, 1, 2, 2), dtype=np.float32), 5, 5, 1, 0)

    def test_col2im_adjoint_identity(self):
        # <im2col(x), C> == <x, col2im(C)> (adjointness), checked via random
        # vectors: a standard dot-product test for linear-operator pairs.
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 6, 7)).astype(np.float64)
        cols, oh, ow = im2col(x, 3, 3, 2, 1)
        c = rng.standard_normal(cols.shape)
        lhs = float((cols * c).sum())
        back = col2im(c, x.shape, 3, 3, 2, 1, oh, ow)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestConv2D:
    def test_matches_scipy_correlate(self):
        rng = np.random.default_rng(1)
        conv = Conv2D(2, 3, 3, rng=rng)
        x = rng.standard_normal((1, 2, 8, 9)).astype(np.float32)
        out = conv.forward(x)
        for oc in range(3):
            expected = np.zeros((6, 7))
            for ic in range(2):
                expected += signal.correlate2d(
                    x[0, ic].astype(np.float64),
                    conv.params["W"][oc, ic].astype(np.float64),
                    mode="valid",
                )
            expected += conv.params["b"][oc]
            np.testing.assert_allclose(out[0, oc], expected, rtol=1e-4, atol=1e-4)

    def test_output_shape_stride_pad(self):
        conv = Conv2D(1, 4, 5, stride=2, pad=2, rng=np.random.default_rng(0))
        out = conv.forward(np.zeros((3, 1, 20, 20), dtype=np.float32))
        assert out.shape == (3, 4, 10, 10)

    def test_rejects_wrong_channels(self):
        conv = Conv2D(2, 4, 3)
        with pytest.raises(ValueError):
            conv.forward(np.zeros((1, 3, 8, 8), dtype=np.float32))

    def test_input_gradient(self):
        rng = np.random.default_rng(2)
        conv = Conv2D(1, 2, 3, stride=1, pad=1, rng=rng)
        to_float64(conv)
        x = rng.standard_normal((2, 1, 5, 5))

        def loss():
            return float((conv.forward(x) ** 2).sum() / 2)

        loss()
        dx = conv.backward(conv.forward(x))
        num = numerical_grad(loss, x)
        np.testing.assert_allclose(dx, num, rtol=1e-2, atol=1e-3)

    def test_weight_gradient(self):
        rng = np.random.default_rng(3)
        conv = Conv2D(2, 2, 3, rng=rng)
        to_float64(conv)
        x = rng.standard_normal((2, 2, 6, 6))

        def loss():
            return float((conv.forward(x) ** 2).sum() / 2)

        out = conv.forward(x)
        conv.zero_grads()
        conv.backward(out)
        num_w = numerical_grad(loss, conv.params["W"])
        num_b = numerical_grad(loss, conv.params["b"])
        np.testing.assert_allclose(conv.grads["W"], num_w, rtol=1e-2, atol=1e-2)
        np.testing.assert_allclose(conv.grads["b"], num_b, rtol=1e-2, atol=1e-2)


class TestDense:
    def test_forward_linear(self):
        d = Dense(3, 2, rng=np.random.default_rng(0))
        d.params["W"][...] = np.array([[1, 0], [0, 1], [1, 1]], dtype=np.float32)
        d.params["b"][...] = np.array([0.5, -0.5], dtype=np.float32)
        out = d.forward(np.array([[1.0, 2.0, 3.0]], dtype=np.float32))
        np.testing.assert_allclose(out, [[4.5, 4.5]])

    def test_rejects_bad_ndim(self):
        with pytest.raises(ValueError):
            Dense(4, 2).forward(np.zeros((2, 2, 2), dtype=np.float32))

    def test_gradients(self):
        rng = np.random.default_rng(4)
        d = Dense(5, 3, rng=rng)
        to_float64(d)
        x = rng.standard_normal((4, 5))

        def loss():
            return float((d.forward(x) ** 2).sum() / 2)

        out = d.forward(x)
        d.zero_grads()
        dx = d.backward(out)
        np.testing.assert_allclose(dx, numerical_grad(loss, x), rtol=1e-3, atol=1e-4)
        np.testing.assert_allclose(
            d.grads["W"], numerical_grad(loss, d.params["W"]), rtol=1e-2, atol=1e-3
        )
        np.testing.assert_allclose(
            d.grads["b"], numerical_grad(loss, d.params["b"]), rtol=1e-2, atol=1e-3
        )

    def test_grad_accumulation(self):
        d = Dense(2, 2, rng=np.random.default_rng(5))
        x = np.ones((1, 2), dtype=np.float32)
        d.forward(x)
        d.backward(np.ones((1, 2), dtype=np.float32))
        g1 = d.grads["W"].copy()
        d.forward(x)
        d.backward(np.ones((1, 2), dtype=np.float32))
        np.testing.assert_allclose(d.grads["W"], 2 * g1)
        d.zero_grads()
        np.testing.assert_allclose(d.grads["W"], 0)


class TestMaxPool:
    def test_forward(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = MaxPool2D(2).forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_backward_routes_to_max(self):
        pool = MaxPool2D(2)
        x = np.array([[[[1, 2], [3, 4]]]], dtype=np.float32)
        pool.forward(x)
        dx = pool.backward(np.array([[[[10.0]]]], dtype=np.float32))
        np.testing.assert_array_equal(dx[0, 0], [[0, 0], [0, 10]])

    def test_backward_splits_ties(self):
        pool = MaxPool2D(2)
        x = np.ones((1, 1, 2, 2), dtype=np.float32)
        pool.forward(x)
        dx = pool.backward(np.array([[[[8.0]]]], dtype=np.float32))
        np.testing.assert_allclose(dx[0, 0], [[2, 2], [2, 2]])

    def test_truncates_odd_input(self):
        out = MaxPool2D(2).forward(np.zeros((1, 1, 5, 5), dtype=np.float32))
        assert out.shape == (1, 1, 2, 2)

    def test_gradient_numerical(self):
        rng = np.random.default_rng(6)
        pool = MaxPool2D(2)
        # Distinct values avoid ties, which the numerical check can't handle.
        x = rng.permutation(64).astype(np.float64).reshape(1, 1, 8, 8)

        def loss():
            return float((pool.forward(x) ** 2).sum() / 2)

        out = pool.forward(x)
        dx = pool.backward(out)
        np.testing.assert_allclose(dx, numerical_grad(loss, x), rtol=1e-3, atol=1e-4)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            MaxPool2D(0)
        with pytest.raises(ValueError):
            MaxPool2D(4).forward(np.zeros((1, 1, 2, 2), dtype=np.float32))


class TestActivationsAndShape:
    def test_relu_forward(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]], dtype=np.float32))
        np.testing.assert_array_equal(out, [[0, 0, 2]])

    def test_relu_backward(self):
        r = ReLU()
        r.forward(np.array([[-1.0, 3.0]], dtype=np.float32))
        dx = r.backward(np.array([[5.0, 5.0]], dtype=np.float32))
        np.testing.assert_array_equal(dx, [[0, 5]])

    def test_flatten_roundtrip(self):
        f = Flatten()
        x = np.arange(24, dtype=np.float32).reshape(2, 3, 2, 2)
        out = f.forward(x)
        assert out.shape == (2, 12)
        back = f.backward(out)
        np.testing.assert_array_equal(back, x)

    def test_dropout_inference_identity(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        d.training = False
        x = np.ones((4, 4), dtype=np.float32)
        np.testing.assert_array_equal(d.forward(x), x)

    def test_dropout_training_scales(self):
        d = Dropout(0.5, rng=np.random.default_rng(1))
        x = np.ones((2000,), dtype=np.float32)
        out = d.forward(x)
        kept = out > 0
        assert 0.35 < kept.mean() < 0.65
        np.testing.assert_allclose(out[kept], 2.0)

    def test_dropout_backward_uses_same_mask(self):
        d = Dropout(0.5, rng=np.random.default_rng(2))
        x = np.ones((100,), dtype=np.float32)
        out = d.forward(x)
        dx = d.backward(np.ones_like(x))
        np.testing.assert_array_equal(dx, out)

    def test_dropout_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestEndToEndGradient:
    def test_full_network_gradient(self):
        rng = np.random.default_rng(7)
        net = Sequential(
            [
                Conv2D(1, 2, 3, rng=rng),
                ReLU(),
                MaxPool2D(2),
                Flatten(),
                Dense(2 * 3 * 3, 2, rng=rng),
            ]
        )
        to_float64(net)
        x = rng.standard_normal((2, 1, 8, 8))

        def loss():
            return float((net.forward(x) ** 2).sum() / 2)

        out = net.forward(x)
        net.zero_grads()
        dx = net.backward(out)
        np.testing.assert_allclose(dx, numerical_grad(loss, x), rtol=2e-2, atol=1e-3)
