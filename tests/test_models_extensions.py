"""Tests for the Section 5.5 extensions: model persistence and scene-change
detection."""

import numpy as np
import pytest

from repro.models import ModelZoo
from repro.models.drift import SceneChangeMonitor
from repro.nn import TrainConfig
from repro.video import jackson, make_stream


@pytest.fixture(scope="module")
def trained_zoo():
    stream = make_stream(jackson(), 1200, tor=0.3, seed=81)
    zoo = ModelZoo()
    zoo.train_for_stream(
        stream,
        n_train_frames=200,
        stride=2,
        train_config=TrainConfig(epochs=8, batch_size=32, seed=3),
    )
    return stream, zoo


class TestModelPersistence:
    def test_roundtrip_preserves_decisions(self, trained_zoo, tmp_path):
        stream, zoo = trained_zoo
        sid = stream.stream_id
        zoo.save_stream(sid, tmp_path)

        fresh = ModelZoo()
        bundle = fresh.load_stream(sid, tmp_path)
        assert sid in fresh
        assert bundle.kind == "car"

        px = stream.pixel_batch(np.arange(600, 900, 5))
        orig = zoo[sid]
        np.testing.assert_array_equal(
            orig.sdd.passes(px), bundle.sdd.passes(px)
        )
        np.testing.assert_allclose(
            orig.snm.predict_proba(px), bundle.snm.predict_proba(px), atol=1e-6
        )
        assert bundle.snm.c_low == pytest.approx(orig.snm.c_low)
        assert bundle.snm.c_high == pytest.approx(orig.snm.c_high)

    def test_save_unknown_stream_raises(self, trained_zoo, tmp_path):
        _, zoo = trained_zoo
        with pytest.raises(KeyError):
            zoo.save_stream("no-such-stream", tmp_path)

    def test_load_missing_files_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ModelZoo().load_stream("ghost", tmp_path)

    def test_restored_bundle_marked(self, trained_zoo, tmp_path):
        stream, zoo = trained_zoo
        zoo.save_stream(stream.stream_id, tmp_path)
        bundle = ModelZoo().load_stream(stream.stream_id, tmp_path)
        assert "restored_from" in bundle.train_info


class TestSceneChangeMonitor:
    def test_quiet_scene_never_trips(self):
        mon = SceneChangeMonitor(sdd_threshold=0.001, window=50, patience=2)
        rng = np.random.default_rng(0)
        # Background distances around half the threshold.
        mon.observe(rng.uniform(0.0002, 0.0008, size=500))
        assert not mon.scene_changed

    def test_foreground_bursts_do_not_trip(self):
        # Activity inflates the mean distance but background frames keep
        # the rolling minimum low.
        mon = SceneChangeMonitor(sdd_threshold=0.001, window=50, patience=2)
        rng = np.random.default_rng(1)
        distances = rng.uniform(0.0002, 0.0008, size=500)
        distances[::3] = 0.02  # every third frame has a passing object
        mon.observe(distances)
        assert not mon.scene_changed

    def test_camera_move_trips(self):
        mon = SceneChangeMonitor(sdd_threshold=0.001, window=50, patience=2)
        rng = np.random.default_rng(2)
        mon.observe(rng.uniform(0.0002, 0.0008, size=100))
        # Camera repositioned: every frame now far from the old reference.
        mon.observe(rng.uniform(0.01, 0.02, size=200))
        assert mon.scene_changed

    def test_patience_requires_persistence(self):
        mon = SceneChangeMonitor(sdd_threshold=0.001, window=50, patience=3)
        rng = np.random.default_rng(3)
        # One inflated window, then back to normal.
        mon.observe(rng.uniform(0.01, 0.02, size=50))
        mon.observe(rng.uniform(0.0002, 0.0008, size=200))
        assert not mon.scene_changed

    def test_reset_clears_state(self):
        mon = SceneChangeMonitor(sdd_threshold=0.001, window=50, patience=1)
        mon.observe(np.full(100, 0.02))
        assert mon.scene_changed
        mon.reset()
        assert not mon.scene_changed
        assert mon.background_floor == 0.0

    def test_end_to_end_with_real_sdd(self, trained_zoo):
        """A genuinely different scene trips the monitor through real SDD."""
        stream, zoo = trained_zoo
        bundle = zoo[stream.stream_id]
        mon = SceneChangeMonitor(
            sdd_threshold=bundle.sdd.threshold, window=40, patience=2
        )
        # Same scene: no trip.
        px = stream.pixel_batch(np.arange(0, 200))
        mon.observe(bundle.sdd.distances(px))
        assert not mon.scene_changed
        # New viewpoint (different seed => different background).
        other = make_stream(jackson(), 300, tor=0.0, seed=999)
        mon.observe(bundle.sdd.distances(other.pixel_batch(np.arange(0, 200))))
        assert mon.scene_changed
