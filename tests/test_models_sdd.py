"""Tests for the SDD difference-detector filter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.sdd import SDD, calibrate_sdd, mse, nrmse, sad
from repro.video import make_stream, jackson


@pytest.fixture(scope="module")
def trained_setup():
    stream = make_stream(jackson(), 1500, tor=0.3, seed=21)
    bg = stream.reference_image()
    ts = np.arange(0, 1000, 2)
    frames = stream.pixel_batch(ts)
    labels = (stream.gt_counts()[ts] > 0).astype(np.int64)
    return stream, bg, frames, labels


class TestDistanceMetrics:
    def test_mse_zero_for_identical(self):
        img = np.random.default_rng(0).random((20, 20)).astype(np.float32)
        assert mse(img, img)[0] == pytest.approx(0.0)

    def test_mse_known_value(self):
        a = np.zeros((4, 4), dtype=np.float32)
        b = np.full((4, 4), 0.5, dtype=np.float32)
        assert mse(a, b)[0] == pytest.approx(0.25)

    def test_sad_known_value(self):
        a = np.zeros((4, 4), dtype=np.float32)
        b = np.full((4, 4), 0.5, dtype=np.float32)
        assert sad(a, b)[0] == pytest.approx(0.5)

    def test_nrmse_normalizes_by_range(self):
        ref = np.linspace(0, 1, 16, dtype=np.float32).reshape(4, 4)
        frame = ref + 0.1
        assert nrmse(frame, ref)[0] == pytest.approx(0.1, rel=1e-5)

    def test_batch_shapes(self):
        frames = np.random.default_rng(1).random((5, 8, 8)).astype(np.float32)
        ref = frames[0]
        assert mse(frames, ref).shape == (5,)
        assert sad(frames, ref).shape == (5,)

    @given(st.floats(0.01, 0.5))
    @settings(max_examples=20, deadline=None)
    def test_property_mse_monotone_in_offset(self, offset):
        ref = np.full((10, 10), 0.4, dtype=np.float32)
        small = mse(ref + offset / 2, ref)[0]
        large = mse(ref + offset, ref)[0]
        assert large > small


class TestSDD:
    def test_rejects_unknown_metric(self):
        with pytest.raises(ValueError):
            SDD(np.zeros((10, 10)), 0.1, metric="cosine")

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            SDD(np.zeros((10, 10)), -1.0)

    def test_reference_resized_to_sdd_input(self):
        sdd = SDD(np.zeros((37, 53)), 0.1)
        assert sdd.reference.shape == (100, 100)

    def test_identical_frame_filtered(self):
        ref = np.random.default_rng(2).random((50, 50)).astype(np.float32)
        sdd = SDD(ref, threshold=1e-6)
        assert not sdd.passes(ref)[0]
        assert sdd.filter_out(ref)[0]

    def test_changed_frame_passes(self):
        ref = np.full((50, 50), 0.4, dtype=np.float32)
        frame = ref.copy()
        frame[10:30, 10:30] += 0.4
        sdd = SDD(ref, threshold=1e-4)
        assert sdd.passes(frame)[0]

    def test_passes_complements_filter_out(self):
        rng = np.random.default_rng(3)
        ref = rng.random((40, 40)).astype(np.float32)
        frames = rng.random((8, 40, 40)).astype(np.float32)
        sdd = SDD(ref, threshold=0.01)
        np.testing.assert_array_equal(sdd.passes(frames), ~sdd.filter_out(frames))

    def test_higher_threshold_filters_more(self):
        rng = np.random.default_rng(4)
        ref = rng.random((40, 40)).astype(np.float32)
        frames = ref + rng.normal(0, 0.05, size=(50, 40, 40)).astype(np.float32)
        low = SDD(ref, threshold=0.001).passes(frames).sum()
        high = SDD(ref, threshold=0.01).passes(frames).sum()
        assert high <= low


class TestCalibration:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            calibrate_sdd(np.zeros((10, 10)), np.zeros((3, 10, 10)), np.zeros(2))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            calibrate_sdd(np.zeros((10, 10)), np.zeros((0, 10, 10)), np.zeros(0))

    def test_low_false_negative_rate(self, trained_setup):
        stream, bg, frames, labels = trained_setup
        sdd = calibrate_sdd(bg, frames, labels, fn_budget=0.01)
        # Evaluate on a held-out slice of the same stream.
        ts = np.arange(1000, 1500, 2)
        test_frames = stream.pixel_batch(ts)
        test_labels = stream.gt_counts()[ts] > 0
        passes = sdd.passes(test_frames)
        fn_rate = float((test_labels & ~passes).sum()) / max(int(test_labels.sum()), 1)
        assert fn_rate < 0.05

    def test_filters_some_background(self, trained_setup):
        stream, bg, frames, labels = trained_setup
        sdd = calibrate_sdd(bg, frames, labels)
        filtered = sdd.filter_out(frames)
        background = ~labels.astype(bool)
        # A meaningful share of pure-background frames must be dropped.
        assert filtered[background].mean() > 0.3

    def test_relax_margin_lowers_threshold(self, trained_setup):
        _, bg, frames, labels = trained_setup
        strict = calibrate_sdd(bg, frames, labels, relax_margin=1.0)
        relaxed = calibrate_sdd(bg, frames, labels, relax_margin=0.8)
        assert relaxed.threshold < strict.threshold

    def test_no_positive_labels_fallback(self):
        rng = np.random.default_rng(5)
        bg = rng.random((40, 40)).astype(np.float32)
        frames = bg + rng.normal(0, 0.01, size=(30, 40, 40)).astype(np.float32)
        sdd = calibrate_sdd(bg, frames, np.zeros(30))
        assert sdd.threshold > 0.0
