"""Cross-runtime equivalence: one StageGraph, two executors, same counts.

The threaded runtime runs real inference; the discrete-event simulator
replays a trace of the same models.  Both are built from the same
:class:`~repro.core.pipeline.StageGraph` and emit the same per-stage
structured counters, so a trace-faithful pair of runs must agree on
(entered, passed, filtered) at every stage — regardless of threading,
batching, or virtual-clock scheduling.  That agreement is the control
plane's core guarantee, asserted here with
:func:`repro.core.metrics.assert_stage_counts_equal`.
"""

import pytest

from repro.core import FFSVAConfig, assert_stage_counts_equal, build_trace
from repro.models import ModelZoo
from repro.nn import TrainConfig
from repro.runtime import ThreadedPipeline
from repro.sim import PipelineSimulator
from repro.video import jackson, make_stream

N_FRAMES = 240


@pytest.fixture(scope="module")
def fleet():
    """Two small trained streams plus their traces (one model zoo)."""
    zoo = ModelZoo()
    streams, traces = [], []
    for i, tor in enumerate((0.25, 0.45)):
        stream = make_stream(jackson(), N_FRAMES, tor=tor, seed=40 + i)
        zoo.train_for_stream(
            stream,
            n_train_frames=120,
            stride=2,
            train_config=TrainConfig(epochs=6, batch_size=32, seed=7),
        )
        streams.append(stream)
        traces.append(build_trace(stream, zoo))
    return streams, traces, zoo


def _run_both(streams, traces, zoo, config):
    pipe = ThreadedPipeline(streams, zoo, config)
    m_real = pipe.run()
    sim = PipelineSimulator(traces, config, online=False)
    m_sim = sim.run()
    return m_real, m_sim


class TestCrossRuntimeEquivalence:
    def test_default_cascade_counts_match(self, fleet):
        streams, traces, zoo = fleet
        m_real, m_sim = _run_both(streams, traces, zoo, FFSVAConfig())
        m_real.check_conservation()
        m_sim.check_conservation()
        assert_stage_counts_equal(m_real, m_sim)
        assert m_real.frames_to_ref == m_sim.frames_to_ref

    def test_alternative_cascade_counts_match(self, fleet):
        streams, traces, zoo = fleet
        config = FFSVAConfig(cascade="no-sdd")
        m_real, m_sim = _run_both(streams, traces, zoo, config)
        assert set(m_real.stages) == {"snm", "tyolo", "ref"}
        assert_stage_counts_equal(m_real, m_sim)

    def test_two_filter_cascade_counts_match(self, fleet):
        streams, traces, zoo = fleet
        config = FFSVAConfig(cascade="snm-only", batch_policy="static", batch_size=8)
        m_real, m_sim = _run_both(streams, traces, zoo, config)
        assert set(m_real.stages) == {"snm", "ref"}
        assert_stage_counts_equal(m_real, m_sim)

    def test_mosaic_counts_match(self, fleet):
        # The fused mosaic detector must preserve the cross-runtime
        # guarantee: counts are exact (not statistical), so promoting
        # T-YOLO to canvas batches changes cost, never counters.
        streams, traces, zoo = fleet
        config = FFSVAConfig(tyolo_mosaic=True)
        m_real, m_sim = _run_both(streams, traces, zoo, config)
        m_real.check_conservation()
        m_sim.check_conservation()
        assert_stage_counts_equal(m_real, m_sim)
        assert m_real.frames_to_ref == m_sim.frames_to_ref
        # Both runtimes consolidated: fewer canvases than frames, and the
        # per-frame totals they account for agree with the tyolo counters.
        for m in (m_real, m_sim):
            stats = m.extra["mosaic"]
            assert stats["frames"] == m.stages["tyolo"].entered
            assert stats["canvases"] < stats["frames"]
            assert stats["spills"] == 0
            assert 0.0 < stats["fill_ratio"] <= 1.0

    def test_mosaic_outcomes_match_per_frame_path(self, fleet):
        streams, traces, zoo = fleet
        base = ThreadedPipeline(streams, zoo, FFSVAConfig())
        base.run()
        mosaic = ThreadedPipeline(streams, zoo, FFSVAConfig(tyolo_mosaic=True))
        mosaic.run()

        def outcome_set(pipe):
            return sorted(
                (o.stream_id, o.index, o.stage, o.ref_count) for o in pipe.outcomes
            )

        assert outcome_set(mosaic) == outcome_set(base)

    def test_mismatch_is_detected(self, fleet):
        streams, traces, zoo = fleet
        m_real, m_sim = _run_both(streams, traces, zoo, FFSVAConfig())
        m_sim.stages["snm"].entered += 1
        with pytest.raises(AssertionError, match="snm"):
            assert_stage_counts_equal(m_real, m_sim)
