"""Tests for the analytic capacity planner, cross-validated with the sim."""

import pytest

from repro.core.admission import max_realtime_streams
from repro.core.config import FFSVAConfig
from repro.core.planner import offline_throughput_bound, plan_capacity
from repro.devices.placement import baseline_placement
from repro.sim import simulate_offline, simulate_online

from tests.helpers import make_synth_trace


def low_tor_trace(n=2000, seed=0):
    return make_synth_trace(n, 0.7, 0.18, 0.10, seed=seed)


class TestPlanCapacity:
    def test_basic_plan_fields(self):
        plan = plan_capacity(low_tor_trace())
        assert plan.max_streams > 0
        assert plan.bottleneck_device in ("cpu0", "gpu0", "gpu1")
        assert set(plan.device_demand) == {"cpu0", "gpu0", "gpu1"}

    def test_gpu0_is_bottleneck_with_overflow(self):
        # With the reference stage overflowing to storage, the shared
        # filter GPU binds at low TOR.
        plan = plan_capacity(low_tor_trace(), FFSVAConfig())
        assert plan.bottleneck_device == "gpu0"
        assert not plan.include_reference

    def test_strict_mode_counts_reference(self):
        cfg = FFSVAConfig(ref_overflow_to_storage=False)
        plan = plan_capacity(low_tor_trace(), cfg)
        assert plan.include_reference
        # The 56 FPS reference GPU binds before the filters at 10% pass.
        assert plan.bottleneck_device == "gpu1"
        assert plan.max_streams < plan_capacity(low_tor_trace()).max_streams

    def test_capacity_decreases_with_tor(self):
        lo = plan_capacity(make_synth_trace(2000, 0.6, 0.15, 0.08, seed=1))
        hi = plan_capacity(make_synth_trace(2000, 1.0, 0.95, 0.9, seed=1))
        assert lo.max_streams > hi.max_streams

    def test_utilization_at_scales_linearly(self):
        plan = plan_capacity(low_tor_trace())
        u1 = plan.utilization_at(1)
        u10 = plan.utilization_at(10)
        for dev in u1:
            assert u10[dev] == pytest.approx(10 * u1[dev])

    def test_agrees_with_simulator(self):
        """The analytic capacity must match the simulated capacity closely."""
        trace = low_tor_trace(900)
        cfg = FFSVAConfig(batch_policy="feedback", batch_size=10)
        plan = plan_capacity(trace, cfg)

        def run(n):
            traces = [trace.rotated(311 * i).renamed(f"s{i}") for i in range(n)]
            return simulate_online(traces, cfg)

        simulated, _ = max_realtime_streams(run, n_max=64)
        assert abs(simulated - plan.max_streams) <= max(2, 0.2 * simulated)

    def test_utilization_cap(self):
        trace = low_tor_trace()
        relaxed = plan_capacity(trace, utilization_cap=1.0)
        tight = plan_capacity(trace, utilization_cap=0.5)
        assert tight.max_streams <= relaxed.max_streams // 2 + 1


class TestOfflineThroughputBound:
    def test_bound_respected_and_tight(self):
        trace = low_tor_trace(2500)
        cfg = FFSVAConfig(batch_policy="feedback", batch_size=10)
        bound = offline_throughput_bound(trace, cfg)
        m = simulate_offline([trace], cfg)
        assert m.throughput_fps <= bound * 1.02
        assert m.throughput_fps >= bound * 0.75  # the sim gets close

    def test_reference_counts_offline_even_with_overflow(self):
        # Offline, the run is not done until the reference drains.
        trace = make_synth_trace(2000, 1.0, 1.0, 1.0, seed=2)
        bound = offline_throughput_bound(trace, FFSVAConfig())
        # Every frame hits the 56 FPS reference model: bound ~ 54-56 FPS.
        assert 40 < bound < 60

    def test_baseline_placement_bound(self):
        trace = make_synth_trace(1000, 1.0, 1.0, 1.0, seed=3)
        cfg = FFSVAConfig()
        placement = baseline_placement()
        # Only the ref stage exists in the baseline placement.
        bound = offline_throughput_bound(trace, cfg, placement=placement)
        assert 90 < bound < 120  # two GPUs at ~55 FPS each

    def test_more_filtering_raises_bound(self):
        heavy = make_synth_trace(2000, 0.9, 0.8, 0.5, seed=4)
        light = make_synth_trace(2000, 0.6, 0.2, 0.05, seed=4)
        cfg = FFSVAConfig()
        assert offline_throughput_bound(light, cfg) > offline_throughput_bound(heavy, cfg)
