"""Shared test fixtures."""

import pytest

from tests.helpers import make_synth_trace


@pytest.fixture
def synth_trace():
    return make_synth_trace
