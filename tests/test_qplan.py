"""Content-adaptive query planner: decision core, determinism, integration.

The planner's load-bearing guarantees, each pinned here:

* the Schmitt-trigger + hysteresis decision core cannot flap — a monotone
  signal yields a monotone band sequence, and noise confined to the
  deadband yields no transitions at all (property-based);
* the decision log is **replayable**: feeding a run's sampled
  ``plan_activity[*]`` series back through the pure decision core
  reproduces the live log exactly;
* the threaded runtime and the simulator derive the *identical* decision
  log and identical per-stage frame counts for the same workload, plan
  churn included;
* ``FusedSNM.t_pre`` keys its threshold cache by the full per-stream
  degree *vector* — two streams on different degrees never alias one
  scalar's cache line (regression: the cache once used a scalar key).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FFSVAConfig, build_trace
from repro.core.metrics import assert_stage_counts_equal
from repro.core.pipeline import STAGES
from repro.core.qplan import (
    BANDS,
    PlanCatalog,
    PlanSignals,
    PlanState,
    decide,
    replay_decisions,
)
from repro.models.snm import SNM, FusedSNM, SNMConfig, build_snm_network
from repro.models.zoo import ModelZoo, TrainConfig
from repro.runtime import ThreadedPipeline
from repro.sim import PipelineSimulator
from repro.video import jackson, make_stream

N_FRAMES = 240


@pytest.fixture(scope="module")
def fleet():
    """One quiet and one busy trained stream plus their traces.

    The busy stream's scene alternation (TOR 0.6) forces at least one
    mid-run band shift, so the cross-runtime comparison exercises plan
    churn, not just the initial settle.
    """
    zoo = ModelZoo()
    streams, traces = [], []
    for i, tor in enumerate((0.05, 0.6)):
        stream = make_stream(jackson(), N_FRAMES, tor=tor, seed=40 + i)
        zoo.train_for_stream(
            stream,
            n_train_frames=120,
            stride=2,
            train_config=TrainConfig(epochs=6, batch_size=32, seed=7),
        )
        streams.append(stream)
        traces.append(build_trace(stream, zoo))
    return streams, traces, zoo


def _plan_config(**overrides):
    base = dict(
        plan="adaptive",
        plan_epoch=32,
        queue_depths={s: 10_000 for s in STAGES},
    )
    base.update(overrides)
    return FFSVAConfig(**base)


def _settled_state(catalog, cfg, activity, rounds=10):
    """A PlanState driven to its fixed point for a constant activity."""
    state = PlanState(cfg.plan_hysteresis)
    for _ in range(rounds):
        decide(
            PlanSignals(activity=activity, batch_target=cfg.batch_size),
            catalog,
            state,
        )
    return state


class TestDecideAntiFlap:
    @given(
        values=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=40)
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_signal_yields_monotone_bands(self, values):
        cfg = FFSVAConfig()
        catalog = PlanCatalog.build(cfg)
        state = _settled_state(catalog, cfg, 0.0)
        bands = []
        for a in sorted(values):
            plan = decide(
                PlanSignals(activity=a, batch_target=cfg.batch_size), catalog, state
            )
            bands.append(BANDS.index(plan.band))
        assert bands == sorted(bands), "band reverted under a monotone signal"
        # At most one transition per band boundary.
        transitions = sum(1 for a, b in zip(bands, bands[1:]) if a != b)
        assert transitions <= len(BANDS) - 1

    @given(
        values=st.lists(
            st.one_of(
                # Strictly inside the quiet threshold's deadband...
                st.floats(min_value=0.12 - 0.03 + 1e-6, max_value=0.12 + 0.03 - 1e-6),
                # ...or strictly inside the busy threshold's deadband.
                st.floats(min_value=0.35 - 0.03 + 1e-6, max_value=0.35 + 0.03 - 1e-6),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_deadband_noise_causes_no_transitions(self, values):
        cfg = FFSVAConfig()  # plan_quiet=0.12, plan_busy=0.35, deadband=0.03
        catalog = PlanCatalog.build(cfg)
        # Settle at "mid" (above quiet+deadband, below busy-deadband).
        state = _settled_state(catalog, cfg, 0.25)
        assert state.band_index == 1
        for a in values:
            plan = decide(
                PlanSignals(activity=a, batch_target=cfg.batch_size), catalog, state
            )
            assert plan.band == "mid", f"deadband noise {a} flipped the band"


class TestReplayDeterminism:
    def test_replay_reproduces_live_log(self, fleet):
        _, traces, _ = fleet
        cfg = _plan_config()
        sim = PipelineSimulator(traces, cfg, online=False)
        sim.run()
        live = sim._planner.sorted_decisions()
        assert live, "expected at least one plan transition"
        replayed = replay_decisions(sim._planner.sampler, cfg)
        assert replayed == live

    def test_replay_from_shared_telemetry_sampler(self, fleet):
        # With telemetry on, activity series ride the telemetry sampler;
        # replay from that (busier) sampler must still match.
        _, traces, _ = fleet
        cfg = _plan_config(telemetry=True)
        sim = PipelineSimulator(traces, cfg, online=False)
        sim.run()
        assert replay_decisions(sim._planner.sampler, cfg) == (
            sim._planner.sorted_decisions()
        )


class TestCrossRuntime:
    def test_threaded_and_sim_logs_identical_under_churn(self, fleet):
        streams, traces, zoo = fleet
        cfg = _plan_config()
        eng = ThreadedPipeline(streams, zoo, cfg)
        m_eng = eng.run(N_FRAMES)
        sim = PipelineSimulator(traces, cfg, online=False)
        m_sim = sim.run()
        assert_stage_counts_equal(m_eng, m_sim)
        log_eng = eng._planner.decision_labels()
        log_sim = sim._planner.decision_labels()
        assert log_eng == log_sim
        assert log_eng, "expected plan transitions on the quiet/busy mix"
        # The quiet stream must have relaxed below full depth at some point.
        assert any(band != "busy" for _, _, band, _, _ in log_eng)
        # Both runtimes agree in the end-of-run summary too.
        assert m_eng.extra["qplan"]["streams"] == m_sim.extra["qplan"]["streams"]
        assert m_eng.extra["qplan"]["decisions"] == m_sim.extra["qplan"]["decisions"]

    def test_static_plan_reports_no_qplan_extra(self, fleet):
        _, traces, _ = fleet
        m = PipelineSimulator(traces, _plan_config(plan="static"), online=False).run()
        assert "qplan" not in m.extra

    def test_adaptive_rejects_attach_and_reserve_slots(self, fleet):
        streams, traces, zoo = fleet
        cfg = _plan_config()
        sim = PipelineSimulator(traces, cfg, online=False)
        with pytest.raises(ValueError, match="attach_stream"):
            sim.attach_stream(traces[0])
        with pytest.raises(ValueError, match="reserve_slots"):
            ThreadedPipeline(streams, zoo, cfg, reserve_slots=1)


def _toy_snms(k):
    rng = np.random.default_rng(7)
    snms = []
    for i in range(k):
        scfg = SNMConfig(seed=100 + i, temperature=1.5 + 0.5 * i)
        snm = SNM(build_snm_network(scfg), scfg, background=rng.random((60, 80)))
        snm.c_low, snm.c_high = 0.2 + 0.05 * i, 0.7 + 0.02 * i
        snms.append(snm)
    return snms


class TestFusedDegreeVector:
    def test_vector_key_does_not_alias_scalar_cache(self):
        """Regression: the t_pre cache once keyed on the scalar degree, so a
        per-stream vector whose first entry matched a previously-cached
        scalar returned the *scalar's* thresholds for every stream."""
        fused = FusedSNM(_toy_snms(2))
        scalar = fused.t_pre(0.5)  # prime the cache at degree 0.5
        vector = fused.t_pre([0.5, 1.0])
        assert vector[0] == scalar[0]
        assert vector[1] == fused.snms[1].t_pre(1.0)
        assert vector[1] != scalar[1]
        # The scalar entry is unchanged (no cache clobbering either way).
        assert np.array_equal(fused.t_pre(0.5), scalar)

    def test_vector_length_must_match_streams(self):
        fused = FusedSNM(_toy_snms(2))
        with pytest.raises(ValueError, match="degree vector"):
            fused.t_pre([0.5])

    def test_passes_with_per_stream_degrees(self):
        fused = FusedSNM(_toy_snms(2))
        rng = np.random.default_rng(3)
        frames = rng.random((12, 60, 80), dtype=np.float32)
        sidx = np.array([0, 1] * 6)
        probs = fused.predict_proba(frames, sidx)
        mixed = fused.passes(probs, sidx, [0.0, 1.0])
        for k, d in enumerate((0.0, 1.0)):
            sel = np.nonzero(sidx == k)[0]
            assert np.array_equal(
                mixed[sel], fused.snms[k].passes(probs[sel], d)
            )
