"""Tests for the discrete-event pipeline simulator."""

import numpy as np
import pytest

from repro.core.config import FFSVAConfig
from repro.devices.costs import CostModel
from repro.sim import PipelineSimulator, simulate_offline, simulate_online

from tests.helpers import make_synth_trace


def low_tor_trace(n=3000, seed=0, sid="s"):
    return make_synth_trace(n, 0.7, 0.18, 0.10, seed=seed, stream_id=sid)


class TestOfflineSimulation:
    def test_all_frames_processed(self):
        tr = low_tor_trace(2000)
        m = simulate_offline([tr])
        assert m.frames_ingested == 2000
        assert m.stages["sdd"].entered == 2000
        total_done = m.frames_to_ref + sum(
            m.stages[s].filtered for s in ("sdd", "snm", "tyolo")
        )
        assert total_done == 2000

    def test_conservation(self):
        m = simulate_offline([low_tor_trace(2000)])
        m.check_conservation()

    def test_ref_receives_exactly_cascade_survivors(self):
        tr = low_tor_trace(2000, seed=3)
        cfg = FFSVAConfig(filter_degree=0.5, number_of_objects=1)
        m = simulate_offline([tr], cfg)
        expected = int(tr.cascade_pass(0.5, 1, 0).sum())
        assert m.frames_to_ref == expected

    def test_throughput_bounded_by_ref_stage(self):
        # With ~10% of frames reaching the 56 FPS reference model, offline
        # throughput can't exceed ~56/0.10 = 560 FPS (plus a little noise
        # from the exact pass fraction).
        tr = low_tor_trace(3000, seed=1)
        m = simulate_offline([tr])
        ref_frac = m.stage_fraction("ref")
        cm = CostModel()
        bound = cm.effective_fps("ref") / ref_frac
        assert m.throughput_fps <= bound * 1.05
        assert m.throughput_fps > bound * 0.5  # and it gets reasonably close

    def test_high_tor_much_slower_than_low_tor(self):
        lo = simulate_offline([make_synth_trace(1500, 0.9, 0.5, 0.10, seed=2)])
        hi = simulate_offline([make_synth_trace(1500, 1.0, 0.95, 0.90, seed=2, stream_id="hi")])
        assert lo.throughput_fps > 2.0 * hi.throughput_fps

    def test_latency_measures_pipeline_residence(self):
        m = simulate_offline([low_tor_trace(1500, seed=4)])
        # Offline latency is from ingest, so it must be far below makespan.
        assert 0 < m.ref_latency.mean < m.duration / 4

    def test_queue_depths_respected(self):
        cfg = FFSVAConfig(batch_policy="dynamic")
        m = simulate_offline([low_tor_trace(1500, seed=5)], cfg)
        for name, hw in m.queue_high_water.items():
            stage = name.split("[")[0]
            if stage == "ref":
                continue  # ref overflows to storage by default (Section 5.5)
            assert hw <= cfg.queue_depth(stage), f"{name} exceeded threshold"

    def test_static_policy_unbounded_queues(self):
        cfg = FFSVAConfig(batch_policy="static", batch_size=10)
        m = simulate_offline([low_tor_trace(1500, seed=6)], cfg)
        # Static mode has no feedback: the SNM queue may exceed 10.
        snm_hw = max(v for k, v in m.queue_high_water.items() if k.startswith("snm"))
        assert snm_hw > 10

    def test_empty_traces_rejected(self):
        with pytest.raises(ValueError):
            PipelineSimulator([], FFSVAConfig())


class TestOnlineSimulation:
    def test_few_streams_realtime(self):
        traces = [low_tor_trace(900, seed=i, sid=f"s{i}") for i in range(4)]
        m = simulate_online(traces)
        assert m.realtime()
        assert m.per_stream_fps == pytest.approx(30.0, rel=0.05)

    def test_many_streams_not_realtime(self):
        traces = [
            make_synth_trace(900, 1.0, 0.9, 0.8, seed=i, stream_id=f"s{i}")
            for i in range(12)
        ]
        m = simulate_online(traces)
        assert not m.realtime()
        assert m.frames_ingested < m.frames_offered

    def test_online_latency_from_arrival(self):
        traces = [low_tor_trace(900, seed=i, sid=f"s{i}") for i in range(2)]
        m = simulate_online(traces)
        assert m.ref_latency.count > 0
        assert m.ref_latency.mean < 2.0  # lightly loaded system

    def test_gpu0_shared_by_snm_and_tyolo(self):
        traces = [low_tor_trace(900, seed=i, sid=f"s{i}") for i in range(8)]
        m = simulate_online(traces)
        assert m.device_utilization["gpu0"] > m.device_utilization["cpu0"]

    def test_tyolo_fps_signal_present(self):
        m = simulate_online([low_tor_trace(900)])
        assert m.extra["tyolo_fps"] >= 0


class TestBatchPolicies:
    def _run(self, policy, batch_size, n_streams=6, seed=10):
        traces = [
            make_synth_trace(1200, 0.8, 0.3, 0.1, seed=seed + i, stream_id=f"s{i}")
            for i in range(n_streams)
        ]
        cfg = FFSVAConfig(batch_policy=policy, batch_size=batch_size)
        return simulate_offline(traces, cfg)

    def test_static_larger_batches_than_dynamic(self):
        m_static = self._run("static", 10)
        m_dyn = self._run("dynamic", 10)
        assert m_static.extra["mean_snm_batch"] >= m_dyn.extra["mean_snm_batch"]

    def test_dynamic_latency_not_worse_than_static(self):
        m_static = self._run("static", 20)
        m_dyn = self._run("dynamic", 20)
        assert m_dyn.frame_latency.mean <= m_static.frame_latency.mean * 1.1

    def test_all_policies_conserve_frames(self):
        for policy in ("static", "feedback", "dynamic"):
            m = self._run(policy, 10)
            m.check_conservation()
            assert m.frames_ingested == 6 * 1200


class TestBypassSemantics:
    def test_full_filtering_proceeds_with_saturated_ref(self):
        # All frames pass SDD+SNM but are dropped by T-YOLO: the reference
        # queue never fills, T-YOLO is never blocked, and the run finishes.
        tr = make_synth_trace(1000, 1.0, 1.0, 0.0, seed=11)
        m = simulate_offline([tr])
        assert m.frames_to_ref == 0
        assert m.stages["tyolo"].filtered == 1000

    def test_zero_pass_trace(self):
        tr = make_synth_trace(500, 0.0, 0.0, 0.0, seed=12)
        m = simulate_offline([tr])
        assert m.stages["sdd"].filtered == 500
        assert m.stages["snm"].entered == 0


class TestDeterminism:
    def test_same_inputs_same_results(self):
        traces = [low_tor_trace(800, seed=i, sid=f"s{i}") for i in range(3)]
        m1 = simulate_online(traces)
        traces2 = [low_tor_trace(800, seed=i, sid=f"s{i}") for i in range(3)]
        m2 = simulate_online(traces2)
        assert m1.duration == m2.duration
        assert m1.frames_to_ref == m2.frames_to_ref
        assert m1.ref_latency.mean == pytest.approx(m2.ref_latency.mean)
