"""Property-based tests for the mosaic pack/unmap path.

The mosaic contract is *exactness*: packing response-cell regions onto
shared canvases and extracting blobs there must reproduce the per-frame
detector's results bit for bit.  These properties pin the invariants that
argument rests on — lossless copies, non-overlapping placements, gutter
isolation — plus the end-to-end count parity itself.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.griddet import GridDetector
from repro.models.mosaic import (
    MOSAIC_COVERAGE_LIMIT,
    Region,
    effective_regions,
    mosaic_counts,
    owner_maps,
    paint_canvases,
    plan_mosaics,
)
from repro.models.tyolo import TYOLO_GRID

GRID = TYOLO_GRID


@st.composite
def cell_batches(draw):
    """An (N, GRID, GRID) batch of synthetic response maps with blobs."""
    n = draw(st.integers(1, 6))
    cells = np.zeros((n, GRID, GRID), dtype=np.float32)
    for i in range(n):
        for _ in range(draw(st.integers(0, 3))):
            h = draw(st.integers(1, 5))
            w = draw(st.integers(1, 5))
            y = draw(st.integers(0, GRID - h))
            x = draw(st.integers(0, GRID - w))
            v = draw(st.floats(0.2, 1.0))
            cells[i, y : y + h, x : x + w] = np.maximum(
                cells[i, y : y + h, x : x + w], np.float32(v)
            )
    return cells


def _regions_for(det, cells):
    proposed = det.propose_regions(cells)
    return [
        Region(i, int(b[0]), int(b[1]), int(b[2]), int(b[3]))
        for i in range(len(cells))
        for b in effective_regions(proposed[i], GRID)
    ]


class TestPackUnmapProperties:
    @given(cells=cell_batches(), canvas=st.sampled_from([13, 26, 52]),
           gutter=st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_painted_patches_round_trip_to_source(self, cells, canvas, gutter):
        # Every placement's canvas rectangle is a bit-exact copy of its
        # source cells — packing is lossless.
        det = GridDetector()
        plan = plan_mosaics(_regions_for(det, cells), canvas, gutter)
        canvases = paint_canvases(plan, cells)
        for p in plan.placements:
            r = p.region
            got = canvases[p.canvas, p.y : p.y + r.height, p.x : p.x + r.width]
            want = cells[r.source, r.cy0 : r.cy1, r.cx0 : r.cx1]
            np.testing.assert_array_equal(got, want)

    @given(cells=cell_batches(), canvas=st.sampled_from([13, 26, 52]),
           gutter=st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_placements_never_overlap(self, cells, canvas, gutter):
        # owner_maps paints each placement's rectangle; any overlap would
        # overwrite an earlier owner, so painted cell totals must match.
        det = GridDetector()
        plan = plan_mosaics(_regions_for(det, cells), canvas, gutter)
        owners = owner_maps(plan)
        painted = int((owners >= 0).sum())
        assert painted == sum(p.region.area for p in plan.placements)

    @given(cells=cell_batches(), canvas=st.sampled_from([13, 26, 52]),
           gutter=st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_gutters_respected(self, cells, canvas, gutter):
        # Rectangles expanded by the gutter on the bottom/right stay
        # pairwise disjoint on a canvas, so no two placements ever sit
        # within `gutter` cells of each other.
        det = GridDetector()
        plan = plan_mosaics(_regions_for(det, cells), canvas, gutter)
        by_canvas: dict[int, list] = {}
        for p in plan.placements:
            by_canvas.setdefault(p.canvas, []).append(p)
        for group in by_canvas.values():
            for i, a in enumerate(group):
                for b in group[i + 1 :]:
                    ah, aw = a.region.height + gutter, a.region.width + gutter
                    bh, bw = b.region.height + gutter, b.region.width + gutter
                    overlap = (a.y < b.y + bh and b.y < a.y + ah
                               and a.x < b.x + bw and b.x < a.x + aw)
                    assert not overlap

    @given(cells=cell_batches(), canvas=st.sampled_from([13, 26, 52]),
           gutter=st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_mosaic_counts_equal_per_frame_counts(self, cells, canvas, gutter):
        det = GridDetector()
        plan = plan_mosaics(_regions_for(det, cells), canvas, gutter)
        got = mosaic_counts(det, plan, cells, len(cells))
        want = np.array([len(det.cell_blobs(c)) for c in cells], dtype=np.int64)
        np.testing.assert_array_equal(got, want)

    @given(cells=cell_batches())
    @settings(max_examples=40, deadline=None)
    def test_proposed_regions_cover_active_cells_exactly_once(self, cells):
        det = GridDetector()
        active = cells > det.cell_activation
        for i, boxes in enumerate(det.propose_regions(cells)):
            covered = np.zeros((GRID, GRID), dtype=np.int32)
            for y0, x0, y1, x1 in boxes:
                covered[y0:y1, x0:x1] += 1
            assert covered.max() <= 1  # regions are pairwise disjoint
            assert np.all(covered[active[i]] == 1)  # every active cell owned

    def test_no_silent_region_cap_spills_are_counted(self):
        # More whole-frame regions than one canvas holds must open more
        # canvases (and count the spills), never drop a region.
        regions = [Region(i, 0, 0, GRID, GRID) for i in range(40)]
        plan = plan_mosaics(regions, 52, 1)
        assert plan.n_regions == 40
        assert len(plan.placements) == 40
        assert plan.n_canvases > 1
        assert plan.spills == plan.n_canvases - 1

    def test_empty_batch_opens_no_canvas(self):
        plan = plan_mosaics([], 52, 1)
        assert plan.n_canvases == 0
        assert plan.spills == 0
        assert plan.occupancy().size == 0

    def test_oversized_region_rejected(self):
        with pytest.raises(ValueError):
            plan_mosaics([Region(0, 0, 0, 14, 2)], 13, 1)


class TestEffectiveRegions:
    def test_none_falls_back_to_whole_frame(self):
        np.testing.assert_array_equal(
            effective_regions(None, GRID), [[0, 0, GRID, GRID]]
        )

    def test_empty_stays_empty(self):
        assert len(effective_regions(np.zeros((0, 4), dtype=np.int64), GRID)) == 0

    def test_high_coverage_falls_back_to_whole_frame(self):
        side = int(np.ceil(GRID * np.sqrt(MOSAIC_COVERAGE_LIMIT)))
        big = np.array([[0, 0, side, side]], dtype=np.int64)
        np.testing.assert_array_equal(
            effective_regions(big, GRID), [[0, 0, GRID, GRID]]
        )

    def test_low_coverage_kept_verbatim(self):
        small = np.array([[1, 1, 3, 4]], dtype=np.int64)
        np.testing.assert_array_equal(effective_regions(small, GRID), small)
