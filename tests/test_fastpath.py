"""Inference fast path: planned resize and zero-alloc forward equivalence.

The fast path is default-on, so these tests pin its one invariant: outputs
must be **bit-identical** to the straightforward implementations.  The
reference resize below recomputes gather indices per call (the pre-plan
implementation); ``Sequential.predict`` is checked against training-mode
``forward`` with dropout disabled.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.griddet import GridDetector
from repro.models.sdd import SDD
from repro.models.snm import SNM, SNMConfig, build_snm_network
from repro.nn import (
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
)
from repro.nn.layers import im2col
from repro.obs import EventBus
from repro.video.ops import ResizePlan, get_resize_plan, resize_bilinear


def reference_resize(img: np.ndarray, out_hw: tuple[int, int]) -> np.ndarray:
    """Bilinear resize recomputing indices/weights per call (pre-plan path)."""
    arr = np.asarray(img, dtype=np.float32)
    single = arr.ndim == 2
    if single:
        arr = arr[None]
    n, h, w = arr.shape
    oh, ow = int(out_hw[0]), int(out_hw[1])
    if (oh, ow) == (h, w):
        out = arr.copy()
        return out[0] if single else out
    ys = (np.arange(oh, dtype=np.float32) + 0.5) * (h / oh) - 0.5
    xs = (np.arange(ow, dtype=np.float32) + 0.5) * (w / ow) - 0.5
    ys = np.clip(ys, 0.0, h - 1.0)
    xs = np.clip(xs, 0.0, w - 1.0)
    y0 = np.floor(ys).astype(np.intp)
    x0 = np.floor(xs).astype(np.intp)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    wy = (ys - y0).astype(np.float32)
    wx = (xs - x0).astype(np.float32)
    ia = arr[:, y0[:, None], x0[None, :]]
    ib = arr[:, y0[:, None], x1[None, :]]
    ic = arr[:, y1[:, None], x0[None, :]]
    id_ = arr[:, y1[:, None], x1[None, :]]
    wy_ = wy[None, :, None]
    wx_ = wx[None, None, :]
    top = ia * (1.0 - wx_) + ib * wx_
    bot = ic * (1.0 - wx_) + id_ * wx_
    out = top * (1.0 - wy_) + bot * wy_
    return out[0] if single else out


class TestResizePlan:
    @settings(max_examples=60, deadline=None)
    @given(
        h=st.integers(2, 48),
        w=st.integers(2, 48),
        oh=st.integers(1, 40),
        ow=st.integers(1, 40),
        n=st.integers(0, 4),  # 0 means single image
        seed=st.integers(0, 2**16),
    )
    def test_planned_equals_unplanned(self, h, w, oh, ow, n, seed):
        rng = np.random.default_rng(seed)
        shape = (h, w) if n == 0 else (n, h, w)
        img = rng.random(shape, dtype=np.float32)
        want = reference_resize(img, (oh, ow))
        got = resize_bilinear(img, (oh, ow))
        assert got.shape == want.shape
        assert np.array_equal(got, want)

    def test_out_buffer_path(self):
        rng = np.random.default_rng(0)
        img = rng.random((3, 31, 17), dtype=np.float32)
        plan = get_resize_plan((31, 17), (12, 23))
        buf = np.empty((3, 12, 23), dtype=np.float32)
        got = plan.apply(img, out=buf)
        assert got is buf
        assert np.array_equal(got, reference_resize(img, (12, 23)))
        # A second apply overwrites the same buffer with new content.
        img2 = rng.random((3, 31, 17), dtype=np.float32)
        got2 = plan.apply(img2, out=buf)
        assert got2 is buf
        assert np.array_equal(got2, reference_resize(img2, (12, 23)))

    def test_plan_cached_per_shape_pair(self):
        assert get_resize_plan((30, 40), (10, 10)) is get_resize_plan((30, 40), (10, 10))
        assert get_resize_plan((30, 40), (10, 10)) is not get_resize_plan((30, 40), (11, 11))

    def test_identity_is_passthrough(self):
        img = np.random.default_rng(1).random((10, 12), dtype=np.float32)
        # Default: identity resize aliases the input (documented), no copy.
        assert resize_bilinear(img, (10, 12)) is img
        out = resize_bilinear(img, (10, 12), copy=True)
        assert out is not img
        assert np.array_equal(out, img)

    def test_plan_rejects_wrong_input_shape(self):
        plan = ResizePlan((10, 10), (5, 5))
        with pytest.raises(ValueError, match="plan built for"):
            plan.apply(np.zeros((11, 10), dtype=np.float32))

    def test_plan_rejects_bad_out_shape(self):
        plan = ResizePlan((10, 10), (5, 5))
        with pytest.raises(ValueError, match="out must have shape"):
            plan.apply(np.zeros((2, 10, 10), np.float32), out=np.zeros((2, 4, 5), np.float32))


class TestIm2ColOut:
    def test_out_matches_allocating_path(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 3, 9, 9)).astype(np.float32)
        want, oh, ow = im2col(x, 3, 3, 2, 1)
        buf = np.empty_like(want)
        got, oh2, ow2 = im2col(x, 3, 3, 2, 1, out=buf)
        assert (oh, ow) == (oh2, ow2)
        assert got is buf
        assert np.array_equal(got, want)

    def test_allocating_path_is_contiguous(self):
        x = np.random.default_rng(3).normal(size=(1, 1, 6, 6)).astype(np.float32)
        cols, _, _ = im2col(x, 2, 2, 1, 0)
        assert cols.flags.c_contiguous

    def test_out_shape_checked(self):
        x = np.zeros((1, 1, 6, 6), dtype=np.float32)
        with pytest.raises(ValueError, match="out must have shape"):
            im2col(x, 2, 2, 1, 0, out=np.zeros((3, 3), np.float32))


def eval_forward(net: Sequential, x: np.ndarray) -> np.ndarray:
    """Training-machinery forward in inference mode (the slow path)."""
    net.set_training(False)
    out = net.forward(x)
    net.set_training(True)
    return out


class TestPredictEquivalence:
    def test_snm_network_bit_identical(self):
        net = build_snm_network(SNMConfig())
        rng = np.random.default_rng(4)
        for n in (1, 5, 32, 5):  # repeat a size: scratch buffers are reused
            x = rng.normal(size=(n, 1, 50, 50)).astype(np.float32)
            assert np.array_equal(net.predict(x), eval_forward(net, x))

    def test_trained_snm_predict_proba_unchanged(self):
        # The adopted call site: predict_proba must agree with the slow path.
        cfg = SNMConfig(input_size=30)
        snm = SNM(build_snm_network(cfg), cfg)
        rng = np.random.default_rng(5)
        snm.set_background(rng.random((60, 80), dtype=np.float32))
        frames = rng.random((12, 60, 80), dtype=np.float32)
        fast = snm.predict_proba(frames)
        x = snm.preprocess(frames)
        from repro.nn import softmax

        logits = eval_forward(snm.network, x) / max(cfg.temperature, 1e-6)
        assert np.array_equal(fast, softmax(logits)[:, 1].astype(np.float32))

    def test_batchnorm_dropout_net_bit_identical(self):
        rng = np.random.default_rng(6)
        net = Sequential(
            [
                Conv2D(1, 4, 3, rng=rng),
                BatchNorm2D(4),
                ReLU(),
                MaxPool2D(2),
                Flatten(),
                Dropout(0.4, rng=rng),
                Dense(4 * 9 * 9, 3, rng=rng),
            ]
        )
        x = rng.normal(size=(6, 1, 20, 20)).astype(np.float32)
        net.forward(x)  # populate batchnorm running stats in training mode
        assert np.array_equal(net.predict(x), eval_forward(net, x))

    def test_predict_restores_training_flags(self):
        net = build_snm_network(SNMConfig(input_size=30))
        net.set_training(True)
        net.predict(np.zeros((2, 1, 30, 30), dtype=np.float32))
        assert all(layer.training for layer in net.layers)
        net.layers[0].training = False  # mixed flags survive too
        net.predict(np.zeros((2, 1, 30, 30), dtype=np.float32))
        assert not net.layers[0].training
        assert all(layer.training for layer in net.layers[1:])

    def test_predict_copy_semantics(self):
        net = Sequential([Dense(4, 2, rng=np.random.default_rng(7))])
        x = np.ones((3, 4), dtype=np.float32)
        owned = net.predict(x)
        raw = net.predict(x, copy=False)
        assert np.array_equal(owned, raw)
        # copy=False hands back the scratch buffer: the next call reuses it.
        raw2 = net.predict(np.full((3, 4), 2.0, dtype=np.float32), copy=False)
        assert raw2 is raw
        # The default copy is insulated from that reuse.
        assert not np.array_equal(owned, raw2)
        assert np.array_equal(owned, net.predict(x))

    def test_training_still_works_after_predict(self):
        # predict must not poison backward: caches are written by forward.
        net = Sequential([Dense(4, 2, rng=np.random.default_rng(8))])
        x = np.ones((3, 4), dtype=np.float32)
        net.predict(x)
        out = net.forward(x)
        net.backward(np.ones_like(out))
        assert float(np.abs(net.layers[0].grads["W"]).sum()) > 0


class TestDetectorFastPath:
    # NB: the plan's *resize output* is bit-identical to the reference (see
    # TestResizePlan), but NumPy's pairwise-SIMD mean/median over the reused
    # scratch buffer can differ from the same values in a fresh allocation by
    # ~1 ULP (reduction grouping is buffer-alignment sensitive).  Reductions
    # downstream of the buffer therefore get a ~1e-5 relative tolerance.

    def test_sdd_distances_match_reference_pipeline(self):
        rng = np.random.default_rng(9)
        ref = rng.random((80, 120), dtype=np.float32)
        sdd = SDD(ref, threshold=0.01)
        frames = rng.random((7, 80, 120), dtype=np.float32)
        resized = reference_resize(frames, (100, 100))
        want = np.mean((resized - sdd.reference) ** 2, axis=(1, 2))
        got = sdd.distances(frames)
        np.testing.assert_allclose(got, want, rtol=1e-5)
        # Steady state reuses the per-instance buffer: exact same results.
        assert np.array_equal(sdd.distances(frames), got)

    def test_griddet_cells_match_reference_resize(self):
        rng = np.random.default_rng(10)
        det = GridDetector(grid=13, resolution=104)
        bg = rng.random((90, 160), dtype=np.float32)
        frames = rng.random((4, 90, 160), dtype=np.float32)
        got = det.response_cells(frames, bg)
        from repro.video.ops import block_reduce_mean

        resized = reference_resize(frames, (104, 104))
        bg_small = reference_resize(bg, (104, 104))
        bg_med = float(np.median(bg_small)) or 1.0
        gain = (np.median(resized, axis=(1, 2)) / bg_med)[:, None, None].astype(np.float32)
        want = block_reduce_mean(np.abs(resized - bg_small[None] * gain), 8) / 0.25
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-6)
        assert np.array_equal(det.response_cells(frames, bg), got)


class TestEventKindGating:
    def test_bus_filters_unwanted_kinds(self):
        bus = EventBus(16, kinds=("batch_exec",))
        assert bus.wants("batch_exec")
        assert not bus.wants("frame_pass")
        bus.emit("frame_pass", 0.0, "snm", stream=0, frame=1)
        bus.emit("batch_exec", 0.0, "snm", n=4)
        assert bus.published == 1
        assert [e.kind for e in bus.events()] == ["batch_exec"]

    def test_unknown_kind_still_rejected(self):
        bus = EventBus(16, kinds=("batch_exec",))
        with pytest.raises(ValueError, match="unknown event kind"):
            bus.emit("nonsense", 0.0, "snm")
        with pytest.raises(ValueError, match="unknown event kinds"):
            EventBus(16, kinds=("bogus",))
