"""Multi-stream scale-out: frame plane, process pools, fused SNM batches.

PR 4's machinery moves work across process boundaries and across streams
without being allowed to change a single verdict.  These tests pin the
three layers separately — the shared-memory frame plane (zero-copy
descriptors, ring back-pressure), the :class:`~repro.runtime.procpool.ProcPool`
executor (inline-identical results, exact crash requeue), and cross-stream
SNM fusion (:func:`~repro.core.batching.decide_fused_batch` fairness plus
:class:`~repro.models.snm.FusedSNM` / ``StackedSequential`` bit-identity)
— and then the whole stack end-to-end against both the simulator's
counters and the plain threaded pipeline's per-frame outcomes.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core import FFSVAConfig, assert_stage_counts_equal, build_trace
from repro.core.batching import decide_fused_batch, fused_pop_order
from repro.models import ModelZoo
from repro.models.snm import SNM, FusedSNM, SNMConfig, build_snm_network
from repro.nn import StackedSequential, TrainConfig
from repro.runtime import ProcPool, ThreadedPipeline
from repro.sim import PipelineSimulator
from repro.video import SharedFramePlane, jackson, make_stream


# ---------------------------------------------------------------------------
# shared-memory frame plane
# ---------------------------------------------------------------------------
class TestSharedFramePlane:
    def test_write_view_roundtrip(self):
        plane = SharedFramePlane(slots=2, slot_bytes=4096)
        try:
            batch = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
            slot = plane.acquire(batch.nbytes)
            desc = plane.write(slot, batch)
            assert desc.shape == (2, 3, 4)
            assert desc.dtype == "float32"
            assert desc.nbytes == batch.nbytes
            view = plane.view(desc)
            assert np.array_equal(view, batch)
            # The view aliases the slab: a write through it is visible to a
            # fresh view of the same descriptor (that is the zero-copy
            # contract workers rely on).
            view[0, 0, 0] = 99.0
            assert plane.view(desc)[0, 0, 0] == 99.0
            plane.release(slot)
        finally:
            plane.close()
            plane.unlink()

    def test_oversized_payload_rejected(self):
        plane = SharedFramePlane(slots=1, slot_bytes=64)
        try:
            with pytest.raises(ValueError, match="exceeds slot size"):
                plane.acquire(65)
        finally:
            plane.close()
            plane.unlink()

    def test_acquire_blocks_until_release(self):
        plane = SharedFramePlane(slots=1, slot_bytes=64)
        try:
            slot = plane.acquire(8)
            with pytest.raises(TimeoutError):
                plane.acquire(8, timeout=0.05)
            plane.release(slot)
            assert plane.acquire(8, timeout=0.05) == slot
        finally:
            plane.close()
            plane.unlink()

    def test_worker_attach_sees_parent_writes(self):
        plane = SharedFramePlane(slots=1, slot_bytes=256)
        try:
            batch = np.linspace(0, 1, 32, dtype=np.float32).reshape(4, 8)
            desc = plane.write(plane.acquire(batch.nbytes), batch)
            attached = SharedFramePlane.attach(plane.name)
            try:
                assert np.array_equal(attached.view(desc), batch)
            finally:
                attached.close()
        finally:
            plane.close()
            plane.unlink()


# ---------------------------------------------------------------------------
# fused batch formation
# ---------------------------------------------------------------------------
class TestDecideFusedBatch:
    def test_round_robin_fairness(self):
        # 3 streams with plenty queued: a batch of 7 starting at stream 1
        # splits 2/3/2 — one frame per visit, no stream monopolizes.
        takes = decide_fused_batch("dynamic", [10, 10, 10], 7, 10, start=1)
        assert takes == [2, 3, 2]
        assert sum(takes) == 7

    def test_skips_empty_queues(self):
        takes = decide_fused_batch("dynamic", [0, 5, 0, 5], 6, 10)
        assert takes == [0, 3, 0, 3]

    def test_never_takes_more_than_queued(self):
        takes = decide_fused_batch("dynamic", [1, 9], 8, 10)
        assert takes == [1, 7]

    def test_static_waits_for_full_aggregate_batch(self):
        assert decide_fused_batch("static", [3, 3], 10, None) == [0, 0]
        assert sum(decide_fused_batch("static", [6, 5], 10, None)) == 10

    def test_feedback_capped_by_queue_depth(self):
        # Aggregate target = min(batch_size, depth) under feedback, matching
        # decide_batch's semantics applied to the pooled length.
        assert sum(decide_fused_batch("feedback", [4, 4], 16, 6)) == 6
        assert decide_fused_batch("feedback", [2, 2], 16, 6) == [0, 0]

    def test_eof_flushes_partial_queues(self):
        # At EOF the remainder flushes even though a full batch can never
        # form again — including streams whose queues are already empty.
        takes = decide_fused_batch("static", [2, 0, 1], 10, None, eof=True)
        assert takes == [2, 0, 1]
        assert decide_fused_batch("feedback", [1, 0, 0], 8, 4, eof=True) == [1, 0, 0]

    def test_all_empty_keeps_waiting(self):
        assert decide_fused_batch("dynamic", [0, 0, 0], 8, 10) == [0, 0, 0]

    def test_pop_order_matches_distribution(self):
        takes = decide_fused_batch("dynamic", [4, 0, 4, 4], 9, 10, start=2)
        order = fused_pop_order(takes, start=2)
        assert order == [2, 3, 0]  # RR from stream 2, empty stream skipped
        assert all(takes[i] > 0 for i in order)


# ---------------------------------------------------------------------------
# stacked forward pass and fused SNM
# ---------------------------------------------------------------------------
def _toy_snms(k: int) -> list[SNM]:
    """K untrained (random-weight) SNMs with distinct backgrounds and
    calibration bands — bit-identity does not need trained weights."""
    rng = np.random.default_rng(7)
    snms = []
    for i in range(k):
        cfg = SNMConfig(seed=100 + i, temperature=1.5 + 0.5 * i)
        snm = SNM(build_snm_network(cfg), cfg, background=rng.random((60, 80)))
        snm.c_low, snm.c_high = 0.2 + 0.05 * i, 0.7 + 0.02 * i
        snms.append(snm)
    return snms


class TestStackedSequential:
    def test_forward_matches_each_net(self):
        nets = [s.network for s in _toy_snms(3)]
        stacked = StackedSequential(nets)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(17, 1, 50, 50)).astype(np.float32)
        model_idx = rng.integers(0, 3, size=17)
        out = stacked.forward(x, model_idx)
        for k, net in enumerate(nets):
            sel = np.nonzero(model_idx == k)[0]
            if len(sel):
                assert np.array_equal(out[sel], net.predict(x[sel], copy=True))

    def test_repeat_calls_identical(self):
        nets = [s.network for s in _toy_snms(2)]
        stacked = StackedSequential(nets)
        x = np.random.default_rng(1).normal(size=(8, 1, 50, 50)).astype(np.float32)
        idx = np.array([0, 1] * 4)
        first = stacked.forward(x, idx).copy()
        assert np.array_equal(stacked.forward(x, idx), first)

    def test_single_model_stack(self):
        net = build_snm_network(SNMConfig(seed=3))
        stacked = StackedSequential([net])
        x = np.random.default_rng(2).normal(size=(5, 1, 50, 50)).astype(np.float32)
        out = stacked.forward(x, np.zeros(5, dtype=np.intp))
        assert np.array_equal(out, net.predict(x, copy=True))

    def test_mismatched_architectures_rejected(self):
        with pytest.raises(ValueError):
            StackedSequential(
                [
                    build_snm_network(SNMConfig()),
                    build_snm_network(SNMConfig(conv1_channels=4)),
                ]
            )


class TestFusedSNM:
    def test_bit_identical_to_per_stream(self):
        snms = _toy_snms(3)
        fused = FusedSNM(snms)
        rng = np.random.default_rng(5)
        frames = rng.random((20, 60, 80), dtype=np.float32)
        sidx = rng.integers(0, 3, size=20)
        probs = fused.predict_proba(frames, sidx)
        for k, snm in enumerate(snms):
            sel = np.nonzero(sidx == k)[0]
            if len(sel):
                assert np.array_equal(probs[sel], snm.predict_proba(frames[sel]))
        for degree in (0.0, 0.5, 1.0):
            passes = fused.passes(probs, sidx, degree)
            for k, snm in enumerate(snms):
                sel = np.nonzero(sidx == k)[0]
                assert np.array_equal(
                    passes[sel], snm.passes(probs[sel], degree)
                )

    def test_per_stream_thresholds_vectorized(self):
        snms = _toy_snms(2)
        fused = FusedSNM(snms)
        t = fused.t_pre(0.5)
        assert t.shape == (2,)
        assert t[0] == snms[0].t_pre(0.5)
        assert t[1] == snms[1].t_pre(0.5)

    def test_stacked_weights_cached_across_calls(self):
        fused = FusedSNM(_toy_snms(2))
        stacked = fused.stacked
        temps = fused.temps
        t_pre = fused.t_pre(0.5)
        # No member changed: repeated access returns the same objects.
        assert fused.stacked is stacked
        assert fused.temps is temps
        assert fused.t_pre(0.5) is t_pre
        assert not t_pre.flags.writeable

    def test_member_version_bump_invalidates_cache(self):
        snms = _toy_snms(2)
        fused = FusedSNM(snms)
        stacked = fused.stacked
        old_t = fused.t_pre(0.5)
        snms[0].calibrate_thresholds(
            np.linspace(0, 1, 64, dtype=np.float32).reshape(-1, 1, 1)
            * np.ones((64, 60, 80), dtype=np.float32),
            np.arange(64) % 2 == 0,
        )
        assert fused.stacked is not stacked
        assert fused.t_pre(0.5) is not old_t
        assert fused.t_pre(0.5)[0] == snms[0].t_pre(0.5)

    def test_mark_retrained_and_explicit_invalidate(self):
        snms = _toy_snms(2)
        fused = FusedSNM(snms)
        stacked = fused.stacked
        snms[1].mark_retrained()
        rebuilt = fused.stacked
        assert rebuilt is not stacked
        fused.invalidate()
        assert fused.stacked is not rebuilt
        # Cached prediction path stays bit-identical after a rebuild.
        rng = np.random.default_rng(9)
        frames = rng.random((8, 60, 80), dtype=np.float32)
        sidx = rng.integers(0, 2, size=8)
        probs = fused.predict_proba(frames, sidx)
        for k, snm in enumerate(snms):
            sel = np.nonzero(sidx == k)[0]
            if len(sel):
                assert np.array_equal(probs[sel], snm.predict_proba(frames[sel]))


# ---------------------------------------------------------------------------
# process pool
# ---------------------------------------------------------------------------
def _threshold_evaluate(pixels, bundles, zoo, config):
    """Per-frame bundle routing test logic: bundles are float thresholds."""
    means = pixels.mean(axis=(1, 2))
    return means > np.asarray(bundles, dtype=np.float64), np.arange(len(pixels))


def _sleepy_evaluate(pixels, bundles, zoo, config):
    time.sleep(0.8)
    return np.ones(len(pixels), dtype=bool), None


class TestProcPool:
    def test_results_match_inline(self):
        bundles = [0.3, 0.5, 0.7]
        pool = ProcPool(
            "t", _threshold_evaluate, bundles, None, None, 2, slot_bytes=65536
        )
        try:
            rng = np.random.default_rng(0)
            for si in (0, 1, 2, 1):
                pixels = rng.random((6, 10, 12))
                want, want_info = _threshold_evaluate(
                    pixels, [bundles[si]] * 6, None, None
                )
                got, info, busy = pool.run_batch(pixels, [si] * 6, None)
                assert np.array_equal(got, want)
                assert np.array_equal(info, want_info)
                assert busy >= 0.0
        finally:
            stats = pool.shutdown()
        assert stats.tasks == 4
        assert stats.frames == 24
        assert stats.crashed_workers == 0
        assert sum(w["tasks"] for w in stats.per_worker.values()) == 4

    def test_crashed_worker_requeues_inflight(self):
        pool = ProcPool(
            "t", _sleepy_evaluate, [0.0], None, None, 2, slot_bytes=65536
        )
        results = []

        def dispatch():
            pixels = np.zeros((2, 4, 4))
            results.append(pool.run_batch(pixels, [0, 0], None)[0])

        try:
            threads = [threading.Thread(target=dispatch) for _ in range(2)]
            for t in threads:
                t.start()
            time.sleep(0.25)  # both workers are mid-sleep on their task
            os.kill(pool._procs[0].pid, signal.SIGKILL)
            for t in threads:
                t.join(timeout=10.0)
            assert not any(t.is_alive() for t in threads)
        finally:
            stats = pool.shutdown()
        # Both batches resolved correctly despite the crash: the dead
        # worker's in-flight task was requeued onto the survivor.
        assert len(results) == 2
        assert all(np.array_equal(r, [True, True]) for r in results)
        assert stats.crashed_workers == 1
        assert stats.requeued_tasks >= 1
        assert stats.lost_tasks == 0

    def test_abort_returns_conservative_mask(self):
        pool = ProcPool(
            "t", _sleepy_evaluate, [0.0], None, None, 1, slot_bytes=65536
        )
        try:
            abort = threading.Event()
            abort.set()

            # All slots free, so acquire succeeds; the future wait then sees
            # the abort and gives the batch back as all-False immediately.
            passes, info, busy = pool.run_batch(np.zeros((3, 4, 4)), [0, 0, 0], abort)
            assert not passes.any()
        finally:
            pool.shutdown()


# ---------------------------------------------------------------------------
# end to end: the full stack with both features on
# ---------------------------------------------------------------------------
N_FRAMES = 200


@pytest.fixture(scope="module")
def trained_fleet():
    zoo = ModelZoo()
    streams, traces = [], []
    for i, tor in enumerate((0.25, 0.45)):
        stream = make_stream(jackson(), N_FRAMES, tor=tor, seed=40 + i)
        zoo.train_for_stream(
            stream,
            n_train_frames=100,
            stride=2,
            train_config=TrainConfig(epochs=4, batch_size=32, seed=7),
        )
        streams.append(stream)
        traces.append(build_trace(stream, zoo))
    return streams, traces, zoo


class TestScaleOutEndToEnd:
    def test_counters_match_simulator(self, trained_fleet):
        streams, traces, zoo = trained_fleet
        config = FFSVAConfig(executor="process", num_sdd_procs=2, snm_fusion=True)
        m_real = ThreadedPipeline(streams, zoo, config).run()
        m_sim = PipelineSimulator(traces, config, online=False).run()
        m_real.check_conservation()
        m_sim.check_conservation()
        assert_stage_counts_equal(m_real, m_sim)
        assert m_real.frames_to_ref == m_sim.frames_to_ref
        stats = m_real.extra["procpool"]["sdd"]
        assert stats["workers"] == 2
        assert stats["frames"] == m_real.stages["sdd"].entered
        assert stats["crashed_workers"] == 0

    def test_outcomes_identical_to_plain_threaded(self, trained_fleet):
        streams, traces, zoo = trained_fleet

        def outcome_set(config):
            pipe = ThreadedPipeline(streams, zoo, config)
            pipe.run()
            return sorted(
                (o.stream_id, o.index, o.stage, o.ref_count) for o in pipe.outcomes
            )

        plain = outcome_set(FFSVAConfig())
        scaled = outcome_set(
            FFSVAConfig(executor="process", num_sdd_procs=2, snm_fusion=True)
        )
        assert scaled == plain

    def test_fusion_only_counters_match(self, trained_fleet):
        streams, traces, zoo = trained_fleet
        config = FFSVAConfig(snm_fusion=True)
        m_real = ThreadedPipeline(streams, zoo, config).run()
        m_sim = PipelineSimulator(traces, config, online=False).run()
        assert_stage_counts_equal(m_real, m_sim)

    def test_scaled_graph_shape(self):
        config = FFSVAConfig(executor="process", num_sdd_procs=4, snm_fusion=True)
        graph = config.graph()
        by_name = {s.name: s for s in graph}
        assert by_name["sdd"].executor == "process"
        assert by_name["snm"].fan_in == "fused"
        # GPU stages never go to a pool; the terminal stage stays inline.
        assert by_name["tyolo"].executor == "thread"
        assert by_name["ref"].executor == "thread"
