"""Shared helpers for the test suite."""

import numpy as np

from repro.core.trace import FrameTrace


def make_synth_trace(
    n: int,
    sdd_pass: float,
    snm_pass: float,
    tyolo_pass: float,
    *,
    seed: int = 0,
    stream_id: str = "synth",
    fps: float = 30.0,
    with_ref: bool = False,
) -> FrameTrace:
    """A synthetic trace with nested stage pass decisions.

    ``sdd_pass``/``snm_pass``/``tyolo_pass`` are *cumulative* fractions of
    all frames surviving through that stage (so snm_pass <= sdd_pass etc.),
    mirroring how Figure 5 reports per-filter execution ratios.
    """
    if not sdd_pass >= snm_pass >= tyolo_pass >= 0:
        raise ValueError("pass fractions must be non-increasing")
    rng = np.random.default_rng(seed)
    u = rng.random(n)
    # A single uniform draw per frame makes survival nested by construction.
    sdd_dist = np.where(u < sdd_pass, 0.9, 0.1)
    snm_prob = np.where(u < snm_pass, 0.9, 0.1).astype(np.float32)
    ty_count = np.where(u < tyolo_pass, 1, 0).astype(np.int64)
    ref = (
        np.where(rng.random(n) < 0.9, ty_count, 1 - ty_count).astype(np.int64)
        if with_ref
        else None
    )
    return FrameTrace(
        stream_id=stream_id,
        kind="car",
        fps=fps,
        sdd_dist=sdd_dist,
        sdd_threshold=0.5,
        snm_prob=snm_prob,
        c_low=0.2,
        c_high=0.8,
        tyolo_count=ty_count,
        gt_count=ty_count.copy(),
        ref_count=ref,
    )
