"""Frame lineage & critical-path latency attribution (repro.obs.lineage).

The lineage reconstructor folds both runtimes' event streams into per-frame
hop tables (queue_wait / batch_wait / service per stage) and a critical-path
summary.  These tests pin down:

* the decomposition's partition property — component sums equal the
  recorded end-to-end latency (exactly in the simulator, within a
  measurement tolerance in the threaded runtime, whose recorded latency
  starts at prefetch, before the first queue put);
* cross-runtime structural equivalence — the same workload produces the
  same hop sequence and dispositions under real threads and the virtual
  clock (the lineage-level extension of the stage-counter guarantee);
* the incompleteness contract — ring eviction yields ``incomplete=True``
  with the surviving hops reported and waits never fabricated;
* the histogram satellites — ``merge`` for cluster-wide aggregation and
  the negative/NaN ``skew_clamped`` guard.
"""

import json
import math
import statistics

import pytest

from repro.core import FFSVAConfig, build_trace
from repro.models import ModelZoo
from repro.nn import TrainConfig
from repro.obs import (
    EventBus,
    LatencyHistogram,
    Telemetry,
    build_all_lineages,
    build_lineage,
    critical_path_summary,
)
from repro.obs.export import _lineage_reply
from repro.obs.lineage import WAIT_RESOLUTION
from repro.runtime import ThreadedPipeline
from repro.sim import PipelineSimulator
from repro.video import jackson, make_stream
from tests.helpers import make_synth_trace

N_FRAMES = 240


# ---------------------------------------------------------------------------
# histogram satellites: merge + skew clamp
# ---------------------------------------------------------------------------
class TestHistogramGuards:
    def test_negative_and_nan_clamped(self):
        h = LatencyHistogram()
        h.observe(-0.5)
        h.observe(float("nan"))
        h.observe(0.01)
        assert h.count == 3
        assert h.skew_clamped == 2
        # Clamped observations land in the first bucket, not a phantom one.
        assert h.counts[0] == 2
        assert h.sum == pytest.approx(0.01)
        assert h.to_dict()["skew_clamped"] == 2

    def test_merge_identity(self):
        h = LatencyHistogram()
        for v in (0.002, 0.04, 3.0):
            h.observe(v)
        before = h.to_dict()
        h.merge(LatencyHistogram())
        assert h.to_dict() == before

    def test_merge_sums_elementwise(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for v in (0.002, 0.3):
            a.observe(v)
        for v in (0.002, 20.0, -1.0):
            b.observe(v)
        a.merge(b)
        assert a.count == 5
        assert a.inf == 1  # 20.0 is above the largest default bound
        assert a.skew_clamped == 1
        assert a.sum == pytest.approx(0.002 + 0.3 + 0.002 + 20.0)

    def test_from_dict_roundtrip(self):
        h = LatencyHistogram()
        for v in (-2.0, 0.004, 7.5):
            h.observe(v)
        assert LatencyHistogram.from_dict(h.to_dict()).to_dict() == h.to_dict()
        # Old snapshots without the field default to zero.
        d = h.to_dict()
        del d["skew_clamped"]
        assert LatencyHistogram.from_dict(d).skew_clamped == 0

    def test_merge_rejects_bound_mismatch(self):
        with pytest.raises(ValueError, match="different bounds"):
            LatencyHistogram().merge(LatencyHistogram(bounds=(0.1, 1.0)))


# ---------------------------------------------------------------------------
# folding unit tests on hand-built event streams
# ---------------------------------------------------------------------------
def _story(bus):
    """One frame's full story: sdd (batch of 2) -> snm (blocked once)."""
    bus.emit("admission", 1.0, "sdd", stream=0, frame=7)
    bus.emit("frame_enter", 1.0, "sdd", stream=0, frame=7)
    bus.emit("frame_enter", 1.2, "sdd", stream=0, frame=8)  # co-member
    bus.emit("batch_exec", 2.0, "sdd", stream=0, n=2, t_start=1.5)
    bus.emit("frame_pass", 2.0, "sdd", stream=0, frame=7, t_start=1.5)
    bus.emit("frame_pass", 2.0, "sdd", stream=0, frame=8, t_start=1.5)
    bus.emit("frame_enter", 2.0, "snm", stream=0, frame=7)
    bus.emit("queue_block", 2.3, "snm", stream=0, frame=7, n=4)
    bus.emit("batch_exec", 3.0, "snm", stream=0, n=1, t_start=2.5)
    bus.emit("frame_filter", 3.0, "snm", stream=0, frame=7, t_start=2.5)


class TestLineageFold:
    def test_decomposition(self):
        bus = EventBus()
        _story(bus)
        lin = build_lineage(bus.events(), 0, 7, terminal="ref")
        assert lin.found and not lin.incomplete
        assert lin.t_admitted == 1.0
        assert [h.stage for h in lin.hops] == ["sdd", "snm"]
        sdd, snm = lin.hops
        # Frame 8 entered at 1.2 and shares the batch: frame 7's first
        # 0.2s is batch formation, the next 0.3s the formed batch queueing.
        assert sdd.batch_wait == pytest.approx(0.2)
        assert sdd.queue_wait == pytest.approx(0.3)
        assert sdd.service == pytest.approx(0.5)
        assert sdd.batch_size == 2 and sdd.batch_id == 0
        assert sdd.disposition == "pass"
        assert snm.gap == pytest.approx(0.0)  # entered snm as sdd finished
        assert snm.batch_wait == pytest.approx(0.0)  # sole member
        assert snm.queue_wait == pytest.approx(0.5)
        assert snm.blocked == 1
        assert snm.disposition == "filtered"
        assert lin.disposition == "filtered"
        # Partition: components sum exactly to last_end - t_admitted.
        assert lin.totals()["total"] == pytest.approx(lin.total_latency)
        assert lin.total_latency == pytest.approx(2.0)

    def test_terminal_maps_to_analyzed(self):
        bus = EventBus()
        bus.emit("admission", 0.0, "ref", stream=1, frame=0)
        bus.emit("frame_enter", 0.0, "ref", stream=1, frame=0)
        bus.emit("batch_exec", 0.4, "ref", stream=1, n=1, t_start=0.1)
        bus.emit("frame_pass", 0.4, "ref", stream=1, frame=0, t_start=0.1)
        lin = build_lineage(bus.events(), 1, 0, terminal="ref")
        assert lin.disposition == "analyzed"

    def test_missing_frame_not_found(self):
        bus = EventBus()
        _story(bus)
        lin = build_lineage(bus.events(), 0, 99, terminal="ref")
        assert not lin.found and lin.hops == []

    def test_ring_eviction_marks_incomplete(self):
        # A 4-slot ring evicts the admission and the sdd/co-member enters;
        # the surviving hops are still reported, with honest zero waits on
        # the hop whose enter was lost.
        bus = EventBus(capacity=4)
        bus.emit("admission", 1.0, "sdd", stream=0, frame=7)
        bus.emit("frame_enter", 1.0, "sdd", stream=0, frame=7)
        bus.emit("batch_exec", 2.0, "sdd", stream=0, n=1, t_start=1.5)
        bus.emit("frame_pass", 2.0, "sdd", stream=0, frame=7, t_start=1.5)
        bus.emit("frame_enter", 2.0, "snm", stream=0, frame=7)
        bus.emit("batch_exec", 3.0, "snm", stream=0, n=1, t_start=2.5)
        bus.emit("frame_filter", 3.0, "snm", stream=0, frame=7, t_start=2.5)
        assert bus.dropped == 3
        lin = build_lineage(bus.events(), 0, 7, terminal="ref",
                            dropped=bus.dropped)
        assert lin.found and lin.incomplete
        assert lin.t_admitted is None
        assert [h.stage for h in lin.hops] == ["sdd", "snm"]
        evicted, survived = lin.hops
        assert not evicted.complete
        assert evicted.batch_wait == 0.0 and evicted.queue_wait == 0.0
        assert evicted.service == pytest.approx(0.5)  # batch window survives
        assert survived.complete
        assert survived.queue_wait == pytest.approx(0.5)
        # Incomplete lineages are excluded from attribution, but counted.
        summary = critical_path_summary(bus.events(), terminal="ref",
                                        dropped=bus.dropped)
        assert summary["frames"] == 1
        assert summary["complete"] == 0
        assert summary["incomplete"] == 1
        assert summary["dropped_events"] == 3

    def test_lineage_reply_warns_on_drops(self):
        tel = Telemetry(capacity=4)
        bus = tel.bus
        bus.emit("admission", 1.0, "sdd", stream=0, frame=7)
        bus.emit("frame_enter", 1.0, "sdd", stream=0, frame=7)
        bus.emit("batch_exec", 2.0, "sdd", stream=0, n=1, t_start=1.5)
        bus.emit("frame_pass", 2.0, "sdd", stream=0, frame=7, t_start=1.5)
        bus.emit("frame_enter", 2.0, "snm", stream=0, frame=7)
        bus.emit("batch_exec", 3.0, "snm", stream=0, n=1, t_start=2.5)
        bus.emit("frame_filter", 3.0, "snm", stream=0, frame=7, t_start=2.5)
        status, _, payload = _lineage_reply(
            tel, None, {"stream": ["0"], "frame": ["7"]}
        )
        body = json.loads(payload)
        assert status == 200
        assert body["incomplete"] is True
        assert "evicted" in body["warning"]
        assert len(body["hops"]) == 2
        # The summary form carries the warning too.
        status, _, payload = _lineage_reply(tel, None, {})
        assert status == 200
        assert "evicted" in json.loads(payload)["warning"]

    def test_lineage_reply_unknown_frame_404(self):
        tel = Telemetry()
        tel.bus.emit("admission", 0.0, "sdd", stream=0, frame=0)
        status, _, payload = _lineage_reply(
            tel, None, {"stream": ["0"], "frame": ["55"]}
        )
        assert status == 404
        assert json.loads(payload)["found"] is False


# ---------------------------------------------------------------------------
# simulator end-to-end (synthetic trace; no training, fully deterministic)
# ---------------------------------------------------------------------------
class TestSimLineage:
    def _run(self):
        trace = make_synth_trace(200, 0.6, 0.3, 0.15, seed=3, with_ref=True)
        tel = Telemetry()
        config = FFSVAConfig()
        sim = PipelineSimulator([trace], config, online=False, telemetry=tel)
        m = sim.run()
        terminal = config.graph().terminal.name
        return sim, tel, m, terminal

    def test_partition_is_exact_offline(self):
        sim, tel, m, terminal = self._run()
        assert m.frames_ingested == 200
        lineages = build_all_lineages(tel.bus.events(), terminal=terminal)
        assert len(lineages) == 200
        assert all(not lin.incomplete for lin in lineages)
        for lin in lineages:
            assert lin.totals()["total"] == pytest.approx(
                lin.total_latency, abs=1e-9
            )
        # The lineage totals ARE the recorded latency samples: offline the
        # simulator measures latency from the admission timestamp.
        mean_lineage = statistics.mean(lin.total_latency for lin in lineages)
        assert mean_lineage == pytest.approx(m.frame_latency.mean, rel=1e-9)

    def test_metrics_carry_lineage_section(self):
        sim, tel, m, terminal = self._run()
        section = m.extra["lineage"]
        assert section["frames"] == 200
        assert section["complete"] == 200
        assert section["components"]
        shares = sum(c["share"] for c in section["components"].values())
        assert shares == pytest.approx(1.0)
        for q in ("p50", "p95", "p99"):
            info = section["quantiles"][q]
            assert info["top"] in info["breakdown"]
        assert (
            section["quantiles"]["p50"]["latency_s"]
            <= section["quantiles"]["p99"]["latency_s"]
        )

    def test_deterministic(self):
        _, tel_a, m_a, terminal = self._run()
        _, tel_b, m_b, _ = self._run()
        la = build_all_lineages(tel_a.bus.events(), terminal=terminal)
        lb = build_all_lineages(tel_b.bus.events(), terminal=terminal)
        assert [lin.structure() for lin in la] == [lin.structure() for lin in lb]
        assert m_a.extra["lineage"] == m_b.extra["lineage"]

    def test_wait_flags_under_load(self):
        # Ten identical streams through one virtual server: the cascade is
        # saturated, so away from warmup frames genuinely wait somewhere.
        trace = make_synth_trace(120, 0.6, 0.3, 0.15, seed=5, with_ref=True)
        traces = [trace.renamed(f"s{i}") for i in range(10)]
        tel = Telemetry()
        config = FFSVAConfig()
        sim = PipelineSimulator(traces, config, online=False, telemetry=tel)
        sim.run()
        lineages = build_all_lineages(
            tel.bus.events(), terminal=config.graph().terminal.name
        )
        late = [
            lin for lin in lineages if lin.frame >= 40 and not lin.incomplete
        ]
        assert late
        waited = sum(any(h.waited for h in lin.hops) for lin in late)
        assert waited / len(late) > 0.5
        # And the flag itself honours the resolution floor.
        for lin in lineages:
            for h in lin.hops:
                expected = (h.batch_wait + h.queue_wait + h.gap) > WAIT_RESOLUTION
                assert h.waited == expected


# ---------------------------------------------------------------------------
# cross-runtime structural equivalence (real models, both executors)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def fleet():
    """Two small trained streams plus their traces (one model zoo)."""
    zoo = ModelZoo()
    streams, traces = [], []
    for i, tor in enumerate((0.25, 0.45)):
        stream = make_stream(jackson(), N_FRAMES, tor=tor, seed=40 + i)
        zoo.train_for_stream(
            stream,
            n_train_frames=120,
            stride=2,
            train_config=TrainConfig(epochs=6, batch_size=32, seed=7),
        )
        streams.append(stream)
        traces.append(build_trace(stream, zoo))
    return streams, traces, zoo


class TestCrossRuntimeLineage:
    @pytest.fixture(scope="class")
    def both(self, fleet):
        streams, traces, zoo = fleet
        config = FFSVAConfig()
        tel_r, tel_s = Telemetry(), Telemetry()
        pipe = ThreadedPipeline(streams, zoo, config, telemetry=tel_r)
        m_real = pipe.run()
        sim = PipelineSimulator(traces, config, online=False, telemetry=tel_s)
        m_sim = sim.run()
        terminal = config.graph().terminal.name
        real = {
            (lin.stream, lin.frame): lin
            for lin in build_all_lineages(
                tel_r.bus.events(), terminal=terminal, dropped=tel_r.bus.dropped
            )
        }
        simulated = {
            (lin.stream, lin.frame): lin
            for lin in build_all_lineages(
                tel_s.bus.events(), terminal=terminal, dropped=tel_s.bus.dropped
            )
        }
        return pipe, m_real, real, m_sim, simulated

    def test_every_frame_reconstructed(self, both):
        pipe, m_real, real, m_sim, simulated = both
        assert set(real) == set(simulated)
        assert len(real) == 2 * N_FRAMES
        assert all(not lin.incomplete for lin in real.values())
        assert all(not lin.incomplete for lin in simulated.values())

    def test_hop_sequences_and_dispositions_match(self, both):
        _, _, real, _, simulated = both
        for key, lin in real.items():
            assert [(h.stage, h.disposition) for h in lin.hops] == [
                (h.stage, h.disposition) for h in simulated[key].hops
            ], f"frame {key} diverged"

    @staticmethod
    def _waiting_stages(lineages):
        """Stages (past ingest) where the majority of visiting frames
        waited beyond the resolution floor."""
        hits: dict[str, list[int]] = {}
        for lin in lineages.values():
            for hop in lin.hops[1:]:
                w, n = hits.setdefault(hop.stage, [0, 0])
                hits[hop.stage] = [w + hop.waited, n + 1]
        return {stage for stage, (w, n) in hits.items() if w / n > 0.5}

    def test_wait_structure_matches_past_ingest(self, both):
        # Per-hop wait *magnitudes* are runtime-specific (real compute vs
        # the calibrated cost model shape the queues differently), and the
        # first hop additionally measures ingest back-pressure (real decode
        # paces the threaded prefetcher; the simulator replays a trace
        # instantly).  What is structural — and gated here — is *where*
        # waiting happens: past ingest, the same stages are
        # majority-waiting under both executors.
        _, _, real, _, simulated = both
        assert self._waiting_stages(real) == self._waiting_stages(simulated)
        # And within each runtime the flag honours the resolution floor.
        for lineages in (real, simulated):
            for lin in lineages.values():
                for h in lin.hops:
                    assert h.waited == (
                        (h.batch_wait + h.queue_wait + h.gap) > WAIT_RESOLUTION
                    )

    def test_threaded_partition_matches_recorded_latency(self, both):
        pipe, m_real, real, _, _ = both
        ctx = pipe.lineage_context()
        by_index = {v["index"]: sid for sid, v in ctx["streams"].items()}
        outcomes = {(o.stream_id, o.index): o for o in pipe.outcomes}
        diffs = []
        for (s_idx, frame), lin in real.items():
            outcome = outcomes[(by_index[s_idx], frame)]
            diffs.append(abs(lin.totals()["total"] - outcome.latency))
        # The recorded clock starts at prefetch (before the first queue
        # put), so the lineage partition undershoots by the pre-admission
        # wait; both must stay within a modest measurement tolerance.
        assert max(diffs) < 0.5
        assert statistics.mean(diffs) < 0.1

    def test_sim_partition_matches_recorded_latency(self, both):
        _, _, _, m_sim, simulated = both
        for lin in simulated.values():
            assert lin.totals()["total"] == pytest.approx(
                lin.total_latency, abs=1e-9
            )
        mean_lineage = statistics.mean(
            lin.total_latency for lin in simulated.values()
        )
        assert mean_lineage == pytest.approx(m_sim.frame_latency.mean, rel=1e-9)
