"""Unit tests for low-level image operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.ops import (
    block_reduce_mean,
    normalize_unit,
    resize_bilinear,
    to_float01,
)


class TestResizeBilinear:
    def test_identity_when_same_size(self):
        img = np.random.default_rng(0).random((10, 12)).astype(np.float32)
        out = resize_bilinear(img, (10, 12))
        np.testing.assert_allclose(out, img)

    def test_output_shape_single(self):
        img = np.zeros((40, 60), dtype=np.float32)
        assert resize_bilinear(img, (13, 13)).shape == (13, 13)

    def test_output_shape_batch(self):
        img = np.zeros((5, 40, 60), dtype=np.float32)
        assert resize_bilinear(img, (20, 30)).shape == (5, 20, 30)

    def test_constant_image_preserved(self):
        img = np.full((17, 23), 0.37, dtype=np.float32)
        out = resize_bilinear(img, (50, 50))
        np.testing.assert_allclose(out, 0.37, atol=1e-6)

    def test_upscale_then_mean_close(self):
        rng = np.random.default_rng(1)
        img = rng.random((8, 8)).astype(np.float32)
        up = resize_bilinear(img, (32, 32))
        assert abs(up.mean() - img.mean()) < 0.02

    def test_values_within_input_range(self):
        rng = np.random.default_rng(2)
        img = rng.random((20, 20)).astype(np.float32)
        out = resize_bilinear(img, (7, 9))
        assert out.min() >= img.min() - 1e-6
        assert out.max() <= img.max() + 1e-6

    def test_gradient_preserved(self):
        # A linear ramp resampled bilinearly stays a linear ramp.
        img = np.tile(np.linspace(0, 1, 64, dtype=np.float32), (16, 1))
        out = resize_bilinear(img, (16, 32))
        diffs = np.diff(out, axis=1)
        assert np.all(diffs > 0)
        assert diffs.std() < 1e-3

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            resize_bilinear(np.zeros((4, 4)), (0, 5))

    def test_rejects_bad_ndim(self):
        with pytest.raises(ValueError):
            resize_bilinear(np.zeros((2, 2, 2, 2)), (4, 4))

    def test_batch_matches_single(self):
        rng = np.random.default_rng(3)
        batch = rng.random((4, 30, 40)).astype(np.float32)
        joint = resize_bilinear(batch, (15, 20))
        for i in range(4):
            np.testing.assert_allclose(joint[i], resize_bilinear(batch[i], (15, 20)))

    @given(
        h=st.integers(2, 40),
        w=st.integers(2, 40),
        oh=st.integers(1, 40),
        ow=st.integers(1, 40),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_shape_and_bounds(self, h, w, oh, ow):
        rng = np.random.default_rng(h * 1000 + w * 100 + oh * 10 + ow)
        img = rng.random((h, w)).astype(np.float32)
        out = resize_bilinear(img, (oh, ow))
        assert out.shape == (oh, ow)
        assert out.min() >= img.min() - 1e-5
        assert out.max() <= img.max() + 1e-5


class TestBlockReduce:
    def test_exact_blocks(self):
        img = np.arange(16, dtype=np.float32).reshape(4, 4)
        out = block_reduce_mean(img, 2)
        expected = np.array([[2.5, 4.5], [10.5, 12.5]], dtype=np.float32)
        np.testing.assert_allclose(out, expected)

    def test_factor_one_is_identity(self):
        img = np.random.default_rng(0).random((6, 7)).astype(np.float32)
        np.testing.assert_allclose(block_reduce_mean(img, 1), img)

    def test_trailing_pixels_dropped(self):
        img = np.ones((5, 7), dtype=np.float32)
        assert block_reduce_mean(img, 2).shape == (2, 3)

    def test_batch(self):
        img = np.ones((3, 8, 8), dtype=np.float32)
        assert block_reduce_mean(img, 4).shape == (3, 2, 2)

    def test_rejects_too_large_factor(self):
        with pytest.raises(ValueError):
            block_reduce_mean(np.ones((4, 4)), 5)

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            block_reduce_mean(np.ones((4, 4)), 0)

    def test_mean_preserved(self):
        rng = np.random.default_rng(4)
        img = rng.random((16, 16)).astype(np.float32)
        out = block_reduce_mean(img, 4)
        assert abs(out.mean() - img.mean()) < 1e-6


class TestConversions:
    def test_uint8_to_float(self):
        img = np.array([[0, 255], [127, 64]], dtype=np.uint8)
        out = to_float01(img)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out[0, 0], 0.0)
        np.testing.assert_allclose(out[0, 1], 1.0)

    def test_float_passthrough(self):
        img = np.array([[0.25]], dtype=np.float32)
        assert to_float01(img)[0, 0] == pytest.approx(0.25)

    def test_normalize_unit_stats(self):
        rng = np.random.default_rng(5)
        img = rng.random((30, 30)).astype(np.float32) * 3 + 1
        out = normalize_unit(img)
        assert abs(out.mean()) < 1e-5
        assert abs(out.std() - 1.0) < 1e-4

    def test_normalize_constant_image(self):
        img = np.full((8, 8), 0.5, dtype=np.float32)
        out = normalize_unit(img)
        np.testing.assert_allclose(out, 0.0)

    def test_normalize_batch_per_image(self):
        rng = np.random.default_rng(6)
        batch = np.stack([rng.random((10, 10)) * 5, rng.random((10, 10))]).astype(np.float32)
        out = normalize_unit(batch)
        for i in range(2):
            assert abs(out[i].mean()) < 1e-4
            assert abs(out[i].std() - 1.0) < 1e-3
