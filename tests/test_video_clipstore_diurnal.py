"""Tests for the memory-bounded ClipStore and the diurnal day workload."""

import numpy as np
import pytest

from repro.analytics import sliding_tor
from repro.video import ClipStore, VideoStream, day_stream, make_day_script
from repro.video.diurnal import DEFAULT_PROFILE


@pytest.fixture(scope="module")
def stream():
    return VideoStream.synthetic(800, 0.3, seed=121)


class TestClipStore:
    def test_pixels_match_direct_rendering(self, stream):
        store = ClipStore(stream, chunk_frames=32)
        for t in (0, 31, 32, 500, 799):
            np.testing.assert_array_equal(store.pixels(t), stream.pixels(t))

    def test_batch_matches(self, stream):
        store = ClipStore(stream, chunk_frames=32)
        ts = np.array([5, 100, 600])
        np.testing.assert_array_equal(store.pixel_batch(ts), stream.pixel_batch(ts))

    def test_memory_budget_respected(self, stream):
        h, w = stream.shape
        budget = 3 * 32 * h * w * 4  # room for three chunks
        store = ClipStore(stream, chunk_frames=32, memory_budget_bytes=budget)
        store.pixel_batch(np.arange(0, 800, 5))  # scan the whole clip
        assert store.peak_bytes <= budget
        assert store.total_video_bytes > budget  # the clip would not fit whole

    def test_sequential_scan_uses_each_chunk_once(self, stream):
        store = ClipStore(stream, chunk_frames=64)
        seen = 0
        for start, chunk in store.iter_chunks():
            seen += len(chunk)
        assert seen == len(stream)
        assert store.decode_count == (800 + 63) // 64

    def test_cache_hits_on_locality(self, stream):
        store = ClipStore(stream, chunk_frames=64)
        store.pixels(10)
        store.pixels(11)
        store.pixels(12)
        assert store.hit_count == 2
        assert store.miss_count == 1

    def test_rejects_impossible_budget(self, stream):
        with pytest.raises(ValueError):
            ClipStore(stream, chunk_frames=64, memory_budget_bytes=1024)

    def test_rejects_bad_chunk(self, stream):
        with pytest.raises(ValueError):
            ClipStore(stream, chunk_frames=0)

    def test_out_of_range(self, stream):
        store = ClipStore(stream)
        with pytest.raises(IndexError):
            store.pixels(800)


class TestDiurnalWorkload:
    @pytest.fixture(scope="class")
    def day(self):
        return day_stream(frames_per_hour=200, seed=7)

    def test_day_length(self, day):
        assert len(day) == 24 * 200

    def test_average_tor_near_base(self, day):
        assert abs(day.tor() - 0.08) < 0.04

    def test_night_quieter_than_rush_hour(self, day):
        counts = day.gt_counts()
        night = (counts[2 * 200 : 4 * 200] > 0).mean()
        rush = (counts[8 * 200 : 9 * 200] > 0).mean()
        assert rush > night + 0.1

    def test_sliding_tor_shows_fluctuation(self, day):
        tor_series = sliding_tor(day.gt_counts(), window=200)
        assert tor_series.max() > 3 * max(tor_series.min(), 0.01)

    def test_rejects_bad_profile(self):
        with pytest.raises(ValueError):
            make_day_script(profile=np.ones(10))

    def test_rejects_tiny_hours(self):
        with pytest.raises(ValueError):
            make_day_script(frames_per_hour=10)

    def test_profile_shape(self):
        assert len(DEFAULT_PROFILE) == 24
        # Rush hours dominate the small hours.
        assert DEFAULT_PROFILE[8] > 10 * DEFAULT_PROFILE[3]

    def test_deterministic(self):
        a = make_day_script(frames_per_hour=100, seed=3)
        b = make_day_script(frames_per_hour=100, seed=3)
        assert a.tracks == b.tracks
