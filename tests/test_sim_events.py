"""Tests for the simulator's event recording (execution trace)."""

import pytest

from repro.core import FFSVAConfig
from repro.sim import PipelineSimulator

from tests.helpers import make_synth_trace


def run_with_events(n=300, **cfg_kwargs):
    sim = PipelineSimulator(
        [make_synth_trace(n, 0.8, 0.4, 0.2, seed=3)],
        FFSVAConfig(**cfg_kwargs),
        online=False,
        record_events=True,
    )
    metrics = sim.run()
    return sim, metrics


class TestEventRecording:
    def test_disabled_by_default(self):
        sim = PipelineSimulator(
            [make_synth_trace(50, 1.0, 1.0, 1.0)], FFSVAConfig(), online=False
        )
        sim.run()
        assert sim.events == []

    def test_events_cover_all_stage_work(self):
        sim, metrics = run_with_events()
        per_stage = {}
        for _s, _e, _dev, stage, _idx, n, _np in sim.events:
            per_stage[stage] = per_stage.get(stage, 0) + n
        for stage in ("sdd", "snm", "tyolo", "ref"):
            assert per_stage.get(stage, 0) == metrics.stages[stage].entered

    def test_no_device_overlap(self):
        sim, _ = run_with_events()
        spans = {}
        for start, end, dev, *_ in sim.events:
            spans.setdefault(dev, []).append((start, end))
        for dev, intervals in spans.items():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2 + 1e-12, f"{dev} services overlap"

    def test_events_respect_placement(self):
        sim, _ = run_with_events()
        for _s, _e, dev, stage, *_ in sim.events:
            if stage == "sdd":
                assert dev == "cpu0"
            elif stage in ("snm", "tyolo"):
                assert dev == "gpu0"
            else:
                assert dev == "gpu1"

    def test_durations_match_cost_model(self):
        sim, _ = run_with_events()
        for start, end, _dev, stage, _idx, n, _np in sim.events:
            expected = sim.costs.service_time(stage, n)
            assert end - start == pytest.approx(expected, rel=1e-9)

    def test_busy_time_equals_event_time(self):
        sim, metrics = run_with_events()
        by_dev = {}
        for start, end, dev, *_ in sim.events:
            by_dev[dev] = by_dev.get(dev, 0.0) + (end - start)
        for name, dev_busy in by_dev.items():
            recorded = metrics.device_utilization[name] * metrics.duration
            assert recorded == pytest.approx(dev_busy, rel=1e-6)
