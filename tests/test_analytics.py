"""Tests for accuracy analytics and TOR utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import (
    error_rate,
    error_run_stats,
    false_negative_mask,
    oracle_positive,
    scene_accuracy,
    sliding_tor,
    tor_of_counts,
    tor_of_trace,
)
from repro.core.config import FFSVAConfig
from repro.core.trace import FrameTrace


def trace_from_arrays(sdd_pass, snm_pass, tyolo_count, ref_count, gt=None):
    """Build a trace whose decisions equal the given masks exactly."""
    n = len(sdd_pass)
    sdd_dist = np.where(np.asarray(sdd_pass, bool), 0.9, 0.1)
    snm_prob = np.where(np.asarray(snm_pass, bool), 0.9, 0.1).astype(np.float32)
    return FrameTrace(
        stream_id="t",
        kind="car",
        fps=30.0,
        sdd_dist=sdd_dist,
        sdd_threshold=0.5,
        snm_prob=snm_prob,
        c_low=0.2,
        c_high=0.8,
        tyolo_count=np.asarray(tyolo_count, dtype=np.int64),
        gt_count=np.asarray(gt if gt is not None else ref_count, dtype=np.int64),
        ref_count=np.asarray(ref_count, dtype=np.int64),
    )


CFG = FFSVAConfig(filter_degree=0.5, number_of_objects=1, relax=0)


class TestErrorRate:
    def test_no_errors_when_cascade_keeps_all_positives(self):
        tr = trace_from_arrays(
            sdd_pass=[1, 1, 0, 1],
            snm_pass=[1, 1, 0, 1],
            tyolo_count=[1, 1, 0, 1],
            ref_count=[1, 1, 0, 1],
        )
        assert error_rate(tr, CFG) == 0.0

    def test_counts_dropped_positives(self):
        # Frame 1 is oracle-positive but SDD dropped it.
        tr = trace_from_arrays(
            sdd_pass=[1, 0, 1, 1],
            snm_pass=[1, 0, 1, 1],
            tyolo_count=[1, 1, 0, 1],
            ref_count=[1, 1, 0, 1],
        )
        assert error_rate(tr, CFG) == pytest.approx(0.25)
        np.testing.assert_array_equal(
            false_negative_mask(tr, CFG), [False, True, False, False]
        )

    def test_true_negatives_do_not_count(self):
        tr = trace_from_arrays(
            sdd_pass=[0, 0],
            snm_pass=[0, 0],
            tyolo_count=[0, 0],
            ref_count=[0, 0],
        )
        assert error_rate(tr, CFG) == 0.0

    def test_requires_ref_counts(self):
        tr = trace_from_arrays([1], [1], [1], [1])
        tr = FrameTrace(
            "t", "car", 30.0, tr.sdd_dist, 0.5, tr.snm_prob, 0.2, 0.8,
            tr.tyolo_count, tr.gt_count, ref_count=None,
        )
        with pytest.raises(ValueError):
            oracle_positive(tr)

    def test_number_of_objects_changes_oracle(self):
        tr = trace_from_arrays(
            sdd_pass=[1, 1],
            snm_pass=[1, 1],
            tyolo_count=[1, 1],
            ref_count=[1, 3],
        )
        cfg2 = CFG.with_(number_of_objects=2)
        np.testing.assert_array_equal(oracle_positive(tr, 2), [False, True])
        # Frame 1 is oracle-positive at N=2 but T-YOLO counted only 1.
        assert error_rate(tr, cfg2) == pytest.approx(0.5)


class TestSceneAccuracy:
    def test_scene_detected_by_any_frame(self):
        # One 4-frame scene; only frame 2 survives -> scene detected.
        tr = trace_from_arrays(
            sdd_pass=[0, 0, 1, 0, 0],
            snm_pass=[0, 0, 1, 0, 0],
            tyolo_count=[0, 0, 1, 0, 0],
            ref_count=[0, 1, 1, 1, 0],
        )
        acc = scene_accuracy(tr, CFG)
        assert acc.n_scenes == 1
        assert acc.n_detected == 1
        assert acc.scene_loss_rate == 0.0

    def test_fully_dropped_scene_is_lost(self):
        tr = trace_from_arrays(
            sdd_pass=[0, 0, 0],
            snm_pass=[0, 0, 0],
            tyolo_count=[0, 0, 0],
            ref_count=[1, 1, 0],
        )
        acc = scene_accuracy(tr, CFG)
        assert acc.n_lost == 1
        assert acc.lost_frames == 2
        assert acc.lost_frame_rate == pytest.approx(2 / 3)

    def test_multiple_scenes(self):
        ref = [1, 1, 0, 0, 1, 0, 1, 1, 1]
        surv = [1, 0, 0, 0, 0, 0, 0, 1, 0]
        tr = trace_from_arrays(surv, surv, surv, ref)
        acc = scene_accuracy(tr, CFG)
        assert acc.n_scenes == 3
        assert acc.n_detected == 2
        assert acc.n_lost == 1  # the singleton scene at index 4

    def test_ground_truth_scenes_option(self):
        tr = trace_from_arrays(
            sdd_pass=[1, 0],
            snm_pass=[1, 0],
            tyolo_count=[1, 0],
            ref_count=[1, 0],
            gt=[1, 1],
        )
        acc_gt = scene_accuracy(tr, CFG, use_oracle_scenes=False)
        assert acc_gt.n_scenes == 1

    def test_empty_trace(self):
        tr = trace_from_arrays([], [], [], [])
        acc = scene_accuracy(tr, CFG)
        assert acc.n_scenes == 0
        assert acc.detection_rate == 1.0


class TestErrorRunStats:
    def test_table2_categories(self):
        # FN runs: [1], [2,3], [10..20], [30..70]
        n = 100
        ref = np.zeros(n, dtype=int)
        surv = np.zeros(n, dtype=bool)
        fn_frames = [1] + [4, 5] + list(range(10, 21)) + list(range(40, 75))
        ref[fn_frames] = 1
        tr = trace_from_arrays(surv, surv, np.zeros(n, int), ref)
        stats = error_run_stats(tr, CFG)
        assert stats.isolated_single == 1
        assert stats.isolated_short == 2
        assert stats.continuous_short == 11
        assert stats.continuous_long == 35
        assert stats.total == 49

    def test_rows_in_table_order(self):
        tr = trace_from_arrays([0], [0], [0], [1])
        rows = error_run_stats(tr, CFG).as_rows()
        assert rows[0][0].startswith("An isolated")
        assert len(rows) == 4

    def test_boundary_run_lengths(self):
        # Exactly 3 consecutive errors -> isolated_short; exactly 30 -> long.
        n = 80
        ref = np.zeros(n, int)
        ref[0:3] = 1
        ref[40:70] = 1
        surv = np.zeros(n, bool)
        tr = trace_from_arrays(surv, surv, np.zeros(n, int), ref)
        stats = error_run_stats(tr, CFG)
        assert stats.isolated_short == 3
        assert stats.continuous_long == 30


class TestTOR:
    def test_tor_of_counts(self):
        assert tor_of_counts(np.array([0, 1, 2, 0])) == pytest.approx(0.5)
        assert tor_of_counts(np.array([0, 1, 2, 0]), 2) == pytest.approx(0.25)
        assert tor_of_counts(np.array([])) == 0.0

    def test_tor_of_trace_sources(self):
        tr = trace_from_arrays(
            [1, 1, 1], [1, 1, 1], tyolo_count=[1, 0, 0], ref_count=[1, 1, 0], gt=[1, 1, 1]
        )
        assert tor_of_trace(tr, source="gt") == pytest.approx(1.0)
        assert tor_of_trace(tr, source="ref") == pytest.approx(2 / 3)
        assert tor_of_trace(tr, source="tyolo") == pytest.approx(1 / 3)
        with pytest.raises(ValueError):
            tor_of_trace(tr, source="nope")

    def test_sliding_tor(self):
        counts = np.array([1, 1, 0, 0, 1, 1])
        out = sliding_tor(counts, 2)
        np.testing.assert_allclose(out, [1.0, 0.5, 0.0, 0.5, 1.0])

    def test_sliding_tor_short_input(self):
        assert sliding_tor(np.array([1]), 5).size == 0

    def test_sliding_tor_rejects_bad_window(self):
        with pytest.raises(ValueError):
            sliding_tor(np.array([1, 2]), 0)

    @given(st.lists(st.integers(0, 3), min_size=5, max_size=40), st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_property_sliding_matches_naive(self, counts, window):
        counts = np.asarray(counts)
        if counts.size < window:
            return
        fast = sliding_tor(counts, window)
        naive = np.array(
            [tor_of_counts(counts[i : i + window]) for i in range(counts.size - window + 1)]
        )
        np.testing.assert_allclose(fast, naive)
