"""Tests for the YOLOv2 baseline simulator and admission control."""

import pytest

from repro.baseline import BaselineSimulator, baseline_offline, baseline_online
from repro.core.admission import (
    AdmissionController,
    InstanceGroup,
    max_realtime_streams,
)
from repro.core.config import FFSVAConfig
from repro.core.metrics import RunMetrics
from repro.sim import simulate_online

from tests.helpers import make_synth_trace


def traces_for(n_streams, n=900, seed=0):
    return [
        make_synth_trace(n, 0.7, 0.18, 0.10, seed=seed + i, stream_id=f"s{i}")
        for i in range(n_streams)
    ]


class TestBaseline:
    def test_offline_throughput_matches_two_gpus(self):
        # Two GPUs at ~56 FPS end-to-end each -> ~112 FPS aggregate.
        m = baseline_offline(traces_for(1, n=2000))
        assert 100 < m.throughput_fps < 135

    def test_every_frame_reaches_ref(self):
        m = baseline_offline(traces_for(2, n=500))
        assert m.frames_to_ref == 1000

    def test_online_four_streams_realtime(self):
        # The paper: commodity dual-GPU servers run up to four-way YOLOv2.
        m = baseline_online(traces_for(3))
        assert m.realtime()

    def test_online_many_streams_overloaded(self):
        m = baseline_online(traces_for(8))
        assert not m.realtime()

    def test_baseline_max_streams_about_four(self):
        def run(n):
            return baseline_online(traces_for(n, n=600))

        best, _ = max_realtime_streams(run, n_max=12)
        assert 2 <= best <= 5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BaselineSimulator([])

    def test_utilization_split_across_gpus(self):
        m = baseline_offline(traces_for(1, n=1500))
        u = m.device_utilization
        assert u["gpu0"] > 0.9 and u["gpu1"] > 0.9


class TestAdmissionController:
    def test_needs_full_window(self):
        ctrl = AdmissionController(FFSVAConfig())
        ctrl.observe_tyolo_rate(0.0, 100.0)
        ctrl.observe_tyolo_rate(1.0, 100.0)
        assert not ctrl.can_admit()  # window only 1s of the required 5s

    def test_admits_when_under_threshold(self):
        ctrl = AdmissionController(FFSVAConfig())
        for t in range(7):
            ctrl.observe_tyolo_rate(float(t), 100.0)
        assert ctrl.can_admit()

    def test_refuses_when_over_threshold(self):
        ctrl = AdmissionController(FFSVAConfig())
        for t in range(7):
            ctrl.observe_tyolo_rate(float(t), 150.0)
        assert not ctrl.can_admit()

    def test_single_spike_blocks_admission(self):
        ctrl = AdmissionController(FFSVAConfig())
        for t in range(7):
            ctrl.observe_tyolo_rate(float(t), 100.0 if t != 3 else 200.0)
        assert not ctrl.can_admit()

    def test_window_trims_old_samples(self):
        ctrl = AdmissionController(FFSVAConfig())
        ctrl.observe_tyolo_rate(0.0, 500.0)  # old overload
        for t in range(10, 17):
            ctrl.observe_tyolo_rate(float(t), 100.0)
        assert ctrl.can_admit()

    def test_overload_detection(self):
        ctrl = AdmissionController(FFSVAConfig())
        assert ctrl.overloaded({"snm[0]": 11})
        assert ctrl.overloaded({"tyolo[3]": 3})
        assert not ctrl.overloaded({"snm[0]": 10, "tyolo[0]": 2, "sdd[0]": 99})


class TestMaxRealtimeStreams:
    def test_monotone_system(self):
        # A fake system that supports exactly 7 streams.
        def run(n):
            m = RunMetrics(n_streams=n, frames_offered=100)
            m.frames_ingested = 100 if n <= 7 else 50
            return m

        best, runs = max_realtime_streams(run, n_max=32)
        assert best == 7
        assert 7 in runs

    def test_zero_when_one_stream_fails(self):
        def run(n):
            m = RunMetrics(n_streams=n, frames_offered=100)
            m.frames_ingested = 0
            return m

        best, _ = max_realtime_streams(run, n_max=8)
        assert best == 0

    def test_hits_n_max(self):
        def run(n):
            m = RunMetrics(n_streams=n, frames_offered=100)
            m.frames_ingested = 100
            return m

        best, _ = max_realtime_streams(run, n_max=16)
        assert best == 16

    def test_real_sim_capacity_search(self):
        def run(n):
            return simulate_online(traces_for(n, n=450))

        best, runs = max_realtime_streams(run, n_max=48)
        # With these pass fractions the ref stage (~56 FPS) binds around
        # 56 / (30 * 0.10) ~ 18 streams; GPU0 binds similarly.
        assert 10 <= best <= 30
        assert runs[best].realtime()
        if best + 1 in runs:
            assert not runs[best + 1].realtime()


class TestInstanceGroup:
    def test_assign_round_robin(self):
        group = InstanceGroup(2, lambda tr: RunMetrics())
        group.assign(traces_for(5))
        assert len(group.assignments[0]) == 3
        assert len(group.assignments[1]) == 2

    def test_rebalances_overloaded_instance(self):
        def run(traces):
            m = RunMetrics(n_streams=len(traces), frames_offered=100 * len(traces))
            # Pretend an instance keeps up only with <= 2 streams.
            m.frames_ingested = m.frames_offered if len(traces) <= 2 else int(
                m.frames_offered * 0.8
            )
            return m

        group = InstanceGroup(2, run)
        group.assignments[0] = traces_for(4)
        group.assignments[1] = traces_for(1, seed=100)
        group.epoch()
        assert group.history[-1]["moved"] is not None
        assert len(group.assignments[0]) == 3
        assert len(group.assignments[1]) == 2

    def test_no_move_when_balanced(self):
        def run(traces):
            m = RunMetrics(n_streams=len(traces), frames_offered=100)
            m.frames_ingested = 100
            return m

        group = InstanceGroup(2, run)
        group.assign(traces_for(4))
        group.epoch()
        assert group.history[-1]["moved"] is None

    def test_rejects_zero_instances(self):
        with pytest.raises(ValueError):
            InstanceGroup(0, lambda tr: RunMetrics())

    @staticmethod
    def run_with_ratio(ratios):
        """An evaluator scripting each instance's ingest ratio by position."""
        calls = iter(ratios)

        def run(traces):
            ratio = next(calls)
            m = RunMetrics(n_streams=len(traces), frames_offered=1000)
            m.frames_ingested = int(1000 * ratio)
            return m

        return run

    def test_single_instance_overload_has_nowhere_to_shed(self):
        group = InstanceGroup(1, self.run_with_ratio([0.5]))
        group.assign(traces_for(3))
        group.epoch()
        assert group.history[-1]["moved"] is None
        assert len(group.assignments[0]) == 3

    def test_all_overloaded_makes_no_move(self):
        # Re-forwarding needs a spare-capacity target; when every instance
        # is drowning there is nowhere to send the stream.
        group = InstanceGroup(2, self.run_with_ratio([0.5, 0.6]))
        group.assign(traces_for(4))
        group.epoch()
        assert group.history[-1]["moved"] is None
        assert [len(a) for a in group.assignments] == [2, 2]

    def test_equal_headroom_tie_goes_to_lowest_index(self):
        group = InstanceGroup(3, self.run_with_ratio([0.5, 1.0, 1.0]))
        group.assign(traces_for(6))
        group.epoch()
        entry = group.history[-1]
        assert entry["moved"] is not None
        assert (entry["from"], entry["to"]) == (0, 1)
        assert [len(a) for a in group.assignments] == [1, 3, 2]
