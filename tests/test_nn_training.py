"""Tests for losses, optimizer, training loop, and serialization."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Dense,
    ReLU,
    Sequential,
    SigmoidBCE,
    SoftmaxCrossEntropy,
    TrainConfig,
    accuracy,
    load_weights,
    save_weights,
    softmax,
    train_classifier,
)


def make_blobs(n=200, seed=0):
    """Two well-separated 2-D Gaussian blobs."""
    rng = np.random.default_rng(seed)
    x0 = rng.normal(loc=(-1.5, -1.5), scale=0.5, size=(n // 2, 2))
    x1 = rng.normal(loc=(1.5, 1.5), scale=0.5, size=(n // 2, 2))
    x = np.concatenate([x0, x1]).astype(np.float32)
    y = np.concatenate([np.zeros(n // 2), np.ones(n // 2)]).astype(np.int64)
    return x, y


def small_net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(2, 16, rng=rng), ReLU(), Dense(16, 2, rng=rng)])


class TestSoftmaxCE:
    def test_softmax_rows_sum_to_one(self):
        logits = np.random.default_rng(0).standard_normal((5, 7))
        p = softmax(logits)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, rtol=1e-6)

    def test_softmax_stability(self):
        p = softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(p, [[0.5, 0.5]])

    def test_loss_of_perfect_prediction(self):
        loss_fn = SoftmaxCrossEntropy()
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        labels = np.array([0, 1])
        assert loss_fn(logits, labels) == pytest.approx(0.0, abs=1e-6)

    def test_uniform_loss_is_log_c(self):
        loss_fn = SoftmaxCrossEntropy()
        logits = np.zeros((4, 3))
        labels = np.array([0, 1, 2, 0])
        assert loss_fn(logits, labels) == pytest.approx(np.log(3), rel=1e-6)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((6, 4))
        labels = rng.integers(0, 4, size=6)
        loss_fn = SoftmaxCrossEntropy()
        loss_fn(logits, labels)
        grad = loss_fn.backward()
        eps = 1e-5
        num = np.zeros_like(logits)
        for i in range(6):
            for j in range(4):
                lp = logits.copy()
                lp[i, j] += eps
                lm = logits.copy()
                lm[i, j] -= eps
                num[i, j] = (
                    SoftmaxCrossEntropy()(lp, labels) - SoftmaxCrossEntropy()(lm, labels)
                ) / (2 * eps)
        np.testing.assert_allclose(grad, num, rtol=1e-4, atol=1e-6)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy()(np.zeros(4), np.zeros(4, dtype=np.int64))


class TestSigmoidBCE:
    def test_perfect_prediction(self):
        loss_fn = SigmoidBCE()
        assert loss_fn(np.array([100.0, -100.0]), np.array([1.0, 0.0])) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_stability_large_logits(self):
        loss_fn = SigmoidBCE()
        val = loss_fn(np.array([1e4, -1e4]), np.array([0.0, 1.0]))
        assert np.isfinite(val)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(2)
        z = rng.standard_normal(8)
        y = rng.integers(0, 2, size=8).astype(np.float64)
        loss_fn = SigmoidBCE()
        loss_fn(z, y)
        grad = loss_fn.backward()
        eps = 1e-6
        num = np.zeros_like(z)
        for i in range(8):
            zp, zm = z.copy(), z.copy()
            zp[i] += eps
            zm[i] -= eps
            num[i] = (SigmoidBCE()(zp, y) - SigmoidBCE()(zm, y)) / (2 * eps)
        np.testing.assert_allclose(grad, num, rtol=1e-4, atol=1e-7)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            SigmoidBCE()(np.zeros(3), np.zeros(4))


class TestSGD:
    def test_descends_quadratic(self):
        net = Sequential([Dense(1, 1, rng=np.random.default_rng(0))])
        net.layers[0].params["W"][...] = 5.0
        net.layers[0].params["b"][...] = 0.0
        opt = SGD(net, lr=0.1, momentum=0.0)
        x = np.ones((1, 1), dtype=np.float32)
        for _ in range(100):
            opt.zero_grad()
            out = net.forward(x)
            net.backward(out)  # d/dout of 0.5*out^2
            opt.step()
        assert abs(float(net.forward(x)[0, 0])) < 1e-3

    def test_momentum_accelerates(self):
        def run(momentum):
            net = Sequential([Dense(1, 1, rng=np.random.default_rng(0))])
            net.layers[0].params["W"][...] = 5.0
            opt = SGD(net, lr=0.01, momentum=momentum)
            x = np.ones((1, 1), dtype=np.float32)
            for _ in range(50):
                opt.zero_grad()
                out = net.forward(x)
                net.backward(out)
                opt.step()
            return abs(float(net.forward(x)[0, 0]))

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_weights(self):
        net = Sequential([Dense(2, 2, rng=np.random.default_rng(1))])
        w0 = np.abs(net.layers[0].params["W"]).sum()
        opt = SGD(net, lr=0.1, momentum=0.0, weight_decay=0.5)
        for _ in range(20):
            opt.zero_grad()
            opt.step()
        assert np.abs(net.layers[0].params["W"]).sum() < w0

    def test_rejects_bad_hyperparams(self):
        net = Sequential([])
        with pytest.raises(ValueError):
            SGD(net, lr=0.0)
        with pytest.raises(ValueError):
            SGD(net, momentum=1.0)


class TestTrainClassifier:
    def test_learns_separable_blobs(self):
        x, y = make_blobs(300, seed=3)
        net = small_net(seed=3)
        result = train_classifier(net, x, y, TrainConfig(epochs=30, batch_size=32, seed=3))
        assert accuracy(net, x, y) > 0.95
        assert result.best_epoch >= 0

    def test_loss_decreases(self):
        x, y = make_blobs(200, seed=4)
        net = small_net(seed=4)
        result = train_classifier(net, x, y, TrainConfig(epochs=10, seed=4))
        assert result.train_losses[-1] < result.train_losses[0]

    def test_restores_best_weights(self):
        x, y = make_blobs(200, seed=5)
        net = small_net(seed=5)
        result = train_classifier(net, x, y, TrainConfig(epochs=15, seed=5))
        # After restore, net must be in inference mode with best-epoch weights.
        assert not net.layers[0].training
        # best_val_loss tracks improvements above the 1e-5 update threshold.
        assert result.best_val_loss == pytest.approx(min(result.val_losses), abs=2e-5)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            train_classifier(small_net(), np.zeros((5, 2), dtype=np.float32), np.zeros(4, dtype=np.int64))

    def test_rejects_tiny_dataset(self):
        with pytest.raises(ValueError):
            train_classifier(small_net(), np.zeros((2, 2), dtype=np.float32), np.zeros(2, dtype=np.int64))

    def test_deterministic_given_seed(self):
        x, y = make_blobs(150, seed=6)
        n1, n2 = small_net(seed=6), small_net(seed=6)
        train_classifier(n1, x, y, TrainConfig(epochs=5, seed=6))
        train_classifier(n2, x, y, TrainConfig(epochs=5, seed=6))
        np.testing.assert_array_equal(n1.layers[0].params["W"], n2.layers[0].params["W"])


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        net = small_net(seed=7)
        path = tmp_path / "model.npz"
        save_weights(net, path)
        net2 = small_net(seed=8)
        assert not np.array_equal(net.layers[0].params["W"], net2.layers[0].params["W"])
        load_weights(net2, path)
        np.testing.assert_array_equal(net.layers[0].params["W"], net2.layers[0].params["W"])
        np.testing.assert_array_equal(net.layers[2].params["b"], net2.layers[2].params["b"])

    def test_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, junk=np.zeros(3))
        with pytest.raises(ValueError):
            load_weights(small_net(), path)

    def test_rejects_architecture_mismatch(self, tmp_path):
        net = small_net(seed=9)
        path = tmp_path / "model.npz"
        save_weights(net, path)
        other = Sequential([Dense(3, 3, rng=np.random.default_rng(0))])
        with pytest.raises(KeyError):
            load_weights(other, path)

    def test_state_dict_is_copy(self):
        net = small_net(seed=10)
        state = net.state_dict()
        key = next(iter(state))
        state[key][...] = 99.0
        assert not np.any(net.layers[0].params["W"] == 99.0)
