"""Failure-injection tests: the threaded runtime must fail loudly, not hang."""

import numpy as np
import pytest

from repro.core import FFSVAConfig
from repro.models import ModelZoo
from repro.nn import TrainConfig
from repro.runtime import ThreadedPipeline
from repro.video import jackson, make_stream


@pytest.fixture(scope="module")
def trained():
    stream = make_stream(jackson(), 500, tor=0.3, seed=131)
    zoo = ModelZoo()
    zoo.train_for_stream(
        stream,
        n_train_frames=150,
        stride=2,
        train_config=TrainConfig(epochs=6, batch_size=32, seed=9),
    )
    return stream, zoo


class _ExplodingSDD:
    """SDD stand-in that fails after a few batches."""

    def __init__(self, real, fail_after=3):
        self._real = real
        self._calls = 0
        self.fail_after = fail_after

    def passes(self, frames):
        self._calls += 1
        if self._calls > self.fail_after:
            raise RuntimeError("injected SDD fault")
        return self._real.passes(frames)


class TestFailurePropagation:
    def test_sdd_fault_surfaces(self, trained):
        stream, zoo = trained
        pipe = ThreadedPipeline([stream], zoo, FFSVAConfig(batch_size=4))
        bundle = pipe.ctxs[0].bundle
        bundle.sdd = _ExplodingSDD(bundle.sdd)
        try:
            with pytest.raises(RuntimeError, match="injected SDD fault"):
                pipe.run(n_frames=200)
        finally:
            # Restore the shared fixture's bundle for other tests.
            bundle.sdd = bundle.sdd._real

    def test_partial_outcomes_before_fault(self, trained):
        stream, zoo = trained
        pipe = ThreadedPipeline([stream], zoo, FFSVAConfig(batch_size=4))
        bundle = pipe.ctxs[0].bundle
        bundle.sdd = _ExplodingSDD(bundle.sdd, fail_after=2)
        try:
            with pytest.raises(RuntimeError):
                pipe.run(n_frames=200)
        finally:
            bundle.sdd = bundle.sdd._real
        # Work done before the fault is still observable, and the pipeline
        # terminated rather than hanging (pytest.raises returning proves it).
        assert len(pipe.outcomes) < 200

    def test_run_without_fault_after_restore(self, trained):
        stream, zoo = trained
        pipe = ThreadedPipeline([stream], zoo, FFSVAConfig(batch_size=4))
        m = pipe.run(n_frames=100)
        assert len(pipe.outcomes) == 100
        m.check_conservation()
