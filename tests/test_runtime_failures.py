"""Failure-injection tests: the threaded runtime must fail loudly, not hang."""

import numpy as np
import pytest

from repro.core import FFSVAConfig
from repro.core.pipeline import (
    ABORTED,
    PER_STREAM,
    BatchRule,
    StageGraph,
    StageLogic,
    StageSpec,
    ref_spec,
    sdd_spec,
    tyolo_spec,
)
from repro.models import ModelZoo
from repro.nn import TrainConfig
from repro.runtime import ThreadedPipeline
from repro.video import jackson, make_stream


@pytest.fixture(scope="module")
def trained():
    stream = make_stream(jackson(), 500, tor=0.3, seed=131)
    zoo = ModelZoo()
    zoo.train_for_stream(
        stream,
        n_train_frames=150,
        stride=2,
        train_config=TrainConfig(epochs=6, batch_size=32, seed=9),
    )
    return stream, zoo


class _ExplodingSDD:
    """SDD stand-in that fails after a few batches."""

    def __init__(self, real, fail_after=3):
        self._real = real
        self._calls = 0
        self.fail_after = fail_after

    def passes(self, frames):
        self._calls += 1
        if self._calls > self.fail_after:
            raise RuntimeError("injected SDD fault")
        return self._real.passes(frames)


class TestFailurePropagation:
    def test_sdd_fault_surfaces(self, trained):
        stream, zoo = trained
        pipe = ThreadedPipeline([stream], zoo, FFSVAConfig(batch_size=4))
        bundle = pipe.ctxs[0].bundle
        bundle.sdd = _ExplodingSDD(bundle.sdd)
        try:
            with pytest.raises(RuntimeError, match="injected SDD fault"):
                pipe.run(n_frames=200)
        finally:
            # Restore the shared fixture's bundle for other tests.
            bundle.sdd = bundle.sdd._real

    def test_partial_outcomes_before_fault(self, trained):
        stream, zoo = trained
        pipe = ThreadedPipeline([stream], zoo, FFSVAConfig(batch_size=4))
        bundle = pipe.ctxs[0].bundle
        bundle.sdd = _ExplodingSDD(bundle.sdd, fail_after=2)
        try:
            with pytest.raises(RuntimeError):
                pipe.run(n_frames=200)
        finally:
            bundle.sdd = bundle.sdd._real
        # Work done before the fault is still observable, the pipeline
        # terminated rather than hanging (pytest.raises returning proves it),
        # and no frame was silently lost: everything still in flight at the
        # abort carries the terminal "aborted" disposition.
        assert len(pipe.outcomes) == 200
        stages = {o.stage for o in pipe.outcomes}
        assert ABORTED in stages
        indices = sorted(o.index for o in pipe.outcomes)
        assert indices == list(range(200))

    def test_run_without_fault_after_restore(self, trained):
        stream, zoo = trained
        pipe = ThreadedPipeline([stream], zoo, FFSVAConfig(batch_size=4))
        m = pipe.run(n_frames=100)
        assert len(pipe.outcomes) == 100
        assert not any(o.stage == ABORTED for o in pipe.outcomes)
        m.check_conservation()


def _faulty_graph(fail_after: int) -> StageGraph:
    """The paper's cascade with an injected mid-pipeline stage that fails
    after ``fail_after`` batches — exercised purely through the StageLogic
    seam, no model monkey-patching required."""
    calls = {"n": 0}

    def evaluate(pixels, bundles, zoo, config):
        calls["n"] += 1
        if calls["n"] > fail_after:
            raise RuntimeError("injected mid-stage fault")
        return np.ones(len(pixels), dtype=bool), None

    faulty = StageSpec(
        name="faulty",
        device="cpu0",
        fan_in=PER_STREAM,
        batch=BatchRule("fixed", 4),
        logic=StageLogic(evaluate, lambda trace, cfg: np.ones(len(trace), dtype=bool)),
        queue_key="snm",  # reuse an existing queue-depth threshold
    )
    return StageGraph([sdd_spec(), faulty, tyolo_spec(), ref_spec()], name="faulty")


class TestInjectedStageFault:
    """Drain/abort behaviour with a fault injected via the StageLogic seam."""

    def test_fault_propagates_and_nothing_is_lost(self, trained):
        stream, zoo = trained
        pipe = ThreadedPipeline(
            [stream],
            zoo,
            FFSVAConfig(batch_size=4),
            graph=_faulty_graph(fail_after=2),
        )
        with pytest.raises(RuntimeError, match="injected mid-stage fault"):
            pipe.run(n_frames=200)
        # The original exception is chained, every downstream queue is
        # closed (no worker or producer is left blocked — run() returned),
        # and frame accounting holds on the failure path too.
        assert len(pipe.outcomes) == pipe.metrics.frames_offered == 200
        assert any(o.stage == ABORTED for o in pipe.outcomes)
        for queues in pipe.stage_queues.values():
            for q in queues:
                assert q.closed and len(q) == 0
        for q in pipe.merged_queues.values():
            assert q.closed and len(q) == 0

    def test_fault_in_first_batch_still_terminates(self, trained):
        stream, zoo = trained
        pipe = ThreadedPipeline(
            [stream],
            zoo,
            FFSVAConfig(batch_size=4),
            graph=_faulty_graph(fail_after=0),
        )
        with pytest.raises(RuntimeError, match="injected mid-stage fault"):
            pipe.run(n_frames=120)
        assert len(pipe.outcomes) == 120
