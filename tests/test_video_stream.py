"""Tests for the renderer, VideoStream, and workload presets."""

import numpy as np
import pytest

from repro.video import (
    Renderer,
    RenderOptions,
    VideoStream,
    coral,
    jackson,
    make_script,
    make_stream,
    make_streams,
)


@pytest.fixture(scope="module")
def stream():
    return VideoStream.synthetic(600, 0.3, seed=13)


class TestRenderer:
    def test_deterministic(self, stream):
        a = stream.pixels(42)
        b = stream.pixels(42)
        np.testing.assert_array_equal(a, b)

    def test_distinct_frames_differ(self, stream):
        # Sensor noise alone guarantees consecutive frames differ.
        assert not np.array_equal(stream.pixels(10), stream.pixels(11))

    def test_pixel_range(self, stream):
        px = stream.pixels(100)
        assert px.dtype == np.float32
        assert px.min() >= 0.0 and px.max() <= 1.0

    def test_background_static_without_objects(self):
        script = make_script(200, 0.0, seed=3)
        r = Renderer(script, RenderOptions(noise_sigma=0.0, lighting_amplitude=0.0))
        np.testing.assert_allclose(r.render_pixels(0), r.render_pixels(150), atol=1e-6)

    def test_objects_change_pixels(self):
        script = make_script(400, 1.0, seed=5)
        r = Renderer(script, RenderOptions(noise_sigma=0.0, lighting_amplitude=0.0))
        counts = script.gt_counts()
        busy = int(np.argmax(counts > 0))
        bg = r.background
        diff = np.abs(r.render_pixels(busy) - bg).max()
        assert diff > 0.1

    def test_lighting_drift(self):
        script = make_script(4000, 0.0, seed=6)
        r = Renderer(script, RenderOptions(noise_sigma=0.0, lighting_amplitude=0.1, lighting_period=2000))
        m0 = r.render_pixels(0).mean()
        m1 = r.render_pixels(500).mean()  # quarter period: peak lighting
        assert m1 > m0 * 1.05

    def test_reference_image_close_to_background(self):
        script = make_script(200, 0.0, seed=7)
        r = Renderer(script)
        ref = r.reference_image(16)
        assert np.abs(ref - r.background).mean() < 0.05

    def test_render_batch_matches_single(self, stream):
        batch = stream.pixel_batch([3, 9])
        np.testing.assert_array_equal(batch[0], stream.pixels(3))
        np.testing.assert_array_equal(batch[1], stream.pixels(9))

    def test_out_of_range_raises(self, stream):
        with pytest.raises(IndexError):
            stream.pixels(len(stream))
        with pytest.raises(IndexError):
            stream.frame(-1)


class TestVideoStream:
    def test_len(self, stream):
        assert len(stream) == 600

    def test_frame_carries_annotations(self, stream):
        counts = stream.gt_counts()
        t = int(np.argmax(counts > 0))
        frame = stream.frame(t)
        assert frame.count(stream.kind, 0.25) == counts[t]

    def test_frame_metadata(self, stream):
        f = stream.frame(90)
        assert f.index == 90
        assert f.stream_id == stream.stream_id
        assert f.timestamp == pytest.approx(3.0)

    def test_iteration_order(self):
        s = VideoStream.synthetic(25, 0.2, seed=3)
        indices = [f.index for f in s]
        assert indices == list(range(25))

    def test_frames_slice(self, stream):
        out = list(stream.frames(10, 14))
        assert [f.index for f in out] == [10, 11, 12, 13]

    def test_scenes_nonempty_for_positive_tor(self, stream):
        assert len(stream.scenes()) >= 1


class TestWorkloads:
    def test_jackson_spec(self):
        spec = jackson()
        assert spec.kind == "car"
        assert spec.paper_resolution == (600, 400)
        assert spec.base_tor == pytest.approx(0.08)

    def test_coral_spec(self):
        spec = coral()
        assert spec.kind == "person"
        assert spec.base_tor == pytest.approx(0.50)

    def test_with_tor(self):
        spec = jackson().with_tor(0.5)
        assert spec.base_tor == 0.5
        assert spec.kind == "car"

    def test_make_stream_uses_spec(self):
        s = make_stream(jackson(), 400, seed=2)
        assert s.kind == "car"
        assert s.shape == (jackson().render_height, jackson().render_width)

    def test_make_streams_distinct(self):
        streams = make_streams(jackson(), 3, 300, tor=0.2, seed=1)
        assert len(streams) == 3
        ids = {s.stream_id for s in streams}
        assert len(ids) == 3
        # Distinct seeds -> distinct scripts.
        assert streams[0].script.tracks != streams[1].script.tracks

    def test_tor_override(self):
        s = make_stream(jackson(), 3000, tor=0.5, seed=8)
        assert abs(s.tor() - 0.5) < 0.08
