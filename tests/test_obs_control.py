"""Tests for the obs control plane: SignalReader, Hysteresis, admission loop.

The contract under test is the one DESIGN.md calls the closed loop: every
control decision is a pure function of the sampled time-series, hysteresis
makes single noisy samples powerless, and replaying a recorded series into
a fresh controller reproduces the exact transition log.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import AdmissionController
from repro.core.config import FFSVAConfig
from repro.obs import Hysteresis, SignalReader, TimeSeriesSampler


def reader_with(points, name="x", interval=0.05):
    sampler = TimeSeriesSampler(interval=interval)
    for t, v in points:
        sampler.observe(name, t, v, force=True)
    return SignalReader(sampler)


# ---------------------------------------------------------------------------
# SignalReader
# ---------------------------------------------------------------------------
class TestSignalReader:
    def test_latest_and_default(self):
        r = reader_with([(0.0, 1.0), (1.0, 3.0)])
        assert r.latest("x") == 3.0
        assert r.latest("missing") is None
        assert r.latest("missing", 7.0) == 7.0

    def test_latest_map_parses_keyed_gauges(self):
        sampler = TimeSeriesSampler(interval=0.05)
        sampler.observe_many(
            1.0,
            {
                "queue_depth[snm[0]]": 3.0,
                "queue_depth[ref]": 1.0,
                "stage_fps[tyolo]": 120.0,
                "queue_depth": 9.0,  # no label -> not part of the map
            },
        )
        assert SignalReader(sampler).latest_map("queue_depth") == {
            "snm[0]": 3.0,
            "ref": 1.0,
        }

    def test_window_clips_to_span_and_now(self):
        r = reader_with([(float(t), float(t)) for t in range(10)])
        assert r.window("x", 3.0, now=9.0) == [
            (6.0, 6.0),
            (7.0, 7.0),
            (8.0, 8.0),
            (9.0, 9.0),
        ]
        # now defaults to the newest point
        assert r.window("x", 0.0) == [(9.0, 9.0)]
        # explicit now excludes later points (replay semantics)
        assert r.window("x", 1.0, now=5.0) == [(4.0, 4.0), (5.0, 5.0)]
        assert r.window("missing", 1.0) == []

    def test_window_mean_and_span(self):
        r = reader_with([(0.0, 2.0), (1.0, 4.0), (2.0, 6.0)])
        assert r.window_mean("x", 10.0) == 4.0
        assert r.window_span("x", 10.0) == 2.0
        assert r.window_mean("missing", 10.0) is None
        assert r.window_span("missing", 10.0) == 0.0

    def test_all_below_requires_coverage(self):
        # Two points spanning 1s cannot answer a 5s question.
        r = reader_with([(0.0, 10.0), (1.0, 10.0)])
        assert not r.all_below("x", 100.0, 5.0)
        # Full coverage, all strictly under.
        r = reader_with([(float(t), 10.0) for t in range(7)])
        assert r.all_below("x", 100.0, 5.0)
        # Strict inequality at the threshold.
        assert not r.all_below("x", 10.0, 5.0)

    def test_all_below_one_spike_breaks_window(self):
        pts = [(float(t), 10.0) for t in range(7)]
        pts[3] = (3.0, 1000.0)
        assert not reader_with(pts).all_below("x", 100.0, 5.0)

    def test_ewma_constant_series_is_identity(self):
        r = reader_with([(float(t), 42.0) for t in range(5)])
        assert r.ewma("x", tau=1.0) == pytest.approx(42.0)

    def test_ewma_converges_toward_recent_values(self):
        pts = [(float(t), 0.0) for t in range(5)] + [
            (float(t), 100.0) for t in range(5, 10)
        ]
        r = reader_with(pts)
        est = r.ewma("x", tau=1.0)
        assert 90.0 < est < 100.0
        # A long time constant remembers the old regime more.
        assert r.ewma("x", tau=10.0) < est

    def test_ewma_respects_now_and_validates_tau(self):
        r = reader_with([(0.0, 1.0), (1.0, 100.0)])
        assert r.ewma("x", tau=1.0, now=0.5) == 1.0
        assert r.ewma("x", tau=1.0, now=-1.0) is None
        assert r.ewma("missing", tau=1.0) is None
        with pytest.raises(ValueError):
            r.ewma("x", tau=0.0)

    # -- irregular-interval behavior (what the router's headroom estimate
    # -- relies on once the sampler starts decimating) --------------------
    def test_ewma_invariant_under_midpoint_decimation(self):
        # exp(-dt1/tau) * exp(-dt2/tau) == exp(-(dt1+dt2)/tau): dropping an
        # intermediate point whose value equals its successor cannot change
        # the estimate.  This is exactly what sampler decimation does when
        # it doubles the interval mid-series.
        dense = reader_with([(0.0, 5.0), (1.0, 80.0), (2.0, 80.0), (3.0, 80.0)])
        sparse = reader_with([(0.0, 5.0), (3.0, 80.0)])
        assert dense.ewma("x", tau=2.0) == pytest.approx(sparse.ewma("x", tau=2.0))

    def test_ewma_weights_by_elapsed_time_not_sample_count(self):
        # Same two values; the version where the new value arrives after a
        # long gap must trust it more than the one where it just arrived.
        short_gap = reader_with([(0.0, 0.0), (0.1, 100.0)])
        long_gap = reader_with([(0.0, 0.0), (10.0, 100.0)])
        assert long_gap.ewma("x", tau=1.0) > short_gap.ewma("x", tau=1.0)
        assert long_gap.ewma("x", tau=1.0) == pytest.approx(100.0, abs=0.01)

    def test_ewma_matches_manual_recurrence_on_irregular_spacing(self):
        points = [(0.0, 10.0), (0.3, 40.0), (1.1, 20.0), (1.2, 90.0), (4.0, 50.0)]
        tau = 0.7
        acc, t_prev = points[0][1], points[0][0]
        for t, v in points[1:]:
            a = math.exp(-(t - t_prev) / tau)
            acc = a * acc + (1.0 - a) * v
            t_prev = t
        assert reader_with(points).ewma("x", tau=tau) == pytest.approx(acc)


# ---------------------------------------------------------------------------
# Hysteresis
# ---------------------------------------------------------------------------
class TestHysteresis:
    def test_rises_only_after_up_consecutive(self):
        h = Hysteresis(up=3, down=1)
        assert [h.update(True) for _ in range(3)] == [False, False, True]

    def test_interrupted_streak_restarts(self):
        h = Hysteresis(up=2, down=1)
        assert not h.update(True)
        assert not h.update(False)  # streak broken
        assert not h.update(True)
        assert h.update(True)

    def test_falls_after_down_consecutive(self):
        h = Hysteresis(up=2, down=2, initial=True)
        assert h.update(False)
        assert not h.update(False)

    def test_reset(self):
        h = Hysteresis(up=2, down=1, initial=True)
        h.update(False)
        h.reset(True)
        assert h.state
        assert not h.update(False)  # down=1 trips immediately after reset

    def test_validates_counts(self):
        with pytest.raises(ValueError):
            Hysteresis(up=0)
        with pytest.raises(ValueError):
            Hysteresis(down=0)

    @given(
        noise=st.lists(st.booleans(), min_size=1, max_size=200),
        up=st.integers(2, 5),
        down=st.integers(1, 5),
    )
    @settings(max_examples=200, deadline=None)
    def test_single_noisy_sample_never_flips(self, noise, up, down):
        """Anti-flap invariant: with up >= 2 and down >= 2 no isolated
        sample (one observation disagreeing with both neighbours) changes
        the state; with down == 1 an isolated False may drop the state but
        an isolated True still never raises it."""
        h = Hysteresis(up=up, down=max(down, 1))
        prev_state = h.state
        for i, raw in enumerate(noise):
            isolated = (
                (i == 0 or noise[i - 1] != raw)
                and (i + 1 >= len(noise) or noise[i + 1] != raw)
            )
            state = h.update(raw)
            if isolated and raw and not prev_state:
                assert not state, "isolated True sample raised the state"
            if isolated and not raw and prev_state and down >= 2:
                assert state, "isolated False sample dropped the state"
            prev_state = state

    @given(seq=st.lists(st.booleans(), min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_steady_input_reaches_steady_state(self, seq):
        h = Hysteresis(up=2, down=2)
        for raw in seq:
            h.update(raw)
        final = seq[-1]
        for _ in range(2):
            h.update(final)
        assert h.state == final


# ---------------------------------------------------------------------------
# AdmissionController on the shared sampler
# ---------------------------------------------------------------------------
class TestAdmissionLoop:
    def make(self, **overrides):
        cfg = FFSVAConfig(**overrides)
        sampler = TimeSeriesSampler(interval=cfg.telemetry_sample_interval)
        return AdmissionController(cfg, sampler=sampler), sampler

    def test_no_internal_rate_window(self):
        # The tentpole: all measurement state lives in the sampler.
        ctrl, sampler = self.make()
        assert ctrl.sampler is sampler
        internal = [
            k
            for k, v in vars(ctrl).items()
            if isinstance(v, (list, tuple)) and k != "decisions" and v
        ]
        assert internal == [], f"controller holds measurement state: {internal}"

    def test_rate_stage_defaults_to_last_filter(self):
        ctrl, _ = self.make()
        assert ctrl.rate_stage == "tyolo"
        assert ctrl.rate_series == "stage_fps[tyolo]"
        ctrl_ref, _ = self.make(cascade="ref-only")
        assert ctrl_ref.rate_stage == "ref"

    def test_can_admit_reads_sampled_series(self):
        ctrl, sampler = self.make()
        for t in range(7):
            sampler.observe("stage_fps[tyolo]", float(t), 100.0, force=True)
        assert ctrl.can_admit()

    def test_overloaded_reads_queue_gauges(self):
        ctrl, sampler = self.make()
        sampler.observe_many(1.0, {"queue_depth[snm[0]]": 3.0, "queue_depth[tyolo]": 1.0})
        assert not ctrl.overloaded()
        sampler.observe_many(2.0, {"queue_depth[tyolo]": 5.0}, force=True)
        assert ctrl.overloaded()  # tyolo threshold is 2

    def test_overloaded_ignores_unmonitored_queues(self):
        ctrl, sampler = self.make()
        # First (sdd) and terminal (ref) queues are not shed triggers.
        sampler.observe_many(1.0, {"queue_depth[sdd]": 99.0, "queue_depth[ref]": 99.0})
        assert not ctrl.overloaded()

    def test_poll_transitions_and_hysteresis(self):
        ctrl, sampler = self.make(admission_hysteresis=2)
        for t in range(7):
            sampler.observe("stage_fps[tyolo]", float(t), 100.0, force=True)
        assert ctrl.poll(6.0) == "admit"
        # One deep-queue sample: debounced, still admitting.
        sampler.observe_many(
            7.0, {"stage_fps[tyolo]": 100.0, "queue_depth[tyolo]": 50.0}, force=True
        )
        assert ctrl.poll(7.0) == "admit"
        # Queue recovers before the second poll: no shed ever happens.
        sampler.observe_many(
            8.0, {"stage_fps[tyolo]": 100.0, "queue_depth[tyolo]": 0.0}, force=True
        )
        assert ctrl.poll(8.0) == "admit"
        # Sustained overload for two polls trips the shed state.
        sampler.observe_many(
            9.0, {"stage_fps[tyolo]": 100.0, "queue_depth[tyolo]": 50.0}, force=True
        )
        ctrl.poll(9.0)
        sampler.observe_many(
            10.0, {"stage_fps[tyolo]": 100.0, "queue_depth[tyolo]": 50.0}, force=True
        )
        assert ctrl.poll(10.0) == "shed"
        assert ctrl.decision_labels() == ["admit", "shed"]

    def test_decisions_log_transitions_only(self):
        ctrl, sampler = self.make()
        for t in range(20):
            sampler.observe("stage_fps[tyolo]", float(t), 100.0, force=True)
            ctrl.poll(float(t))
        assert ctrl.decision_labels() == ["admit"]
        summary = ctrl.summary()
        assert summary["state"] == "admit"
        assert summary["rate_stage"] == "tyolo"
        assert len(summary["decisions"]) == 1

    def test_replay_determinism(self):
        """Decisions are a pure function of the series: replaying one run's
        sampled points into a fresh controller reproduces the transitions."""
        ctrl, sampler = self.make(admission_hysteresis=2)
        poll_times = []
        for i in range(40):
            t = i * 0.5
            fps = 100.0 if i < 25 else 150.0
            depth = 50.0 if 12 <= i < 18 else 0.0
            sampler.observe_many(
                t,
                {"stage_fps[tyolo]": fps, "queue_depth[tyolo]": depth},
                force=True,
            )
            poll_times.append(t)
            ctrl.poll(t)
        assert len(ctrl.decision_labels()) >= 2  # admit and shed both occurred

        replay = TimeSeriesSampler(interval=0.05)
        fresh = AdmissionController(FFSVAConfig(admission_hysteresis=2), sampler=replay)
        recorded = sampler.to_dict()
        for t in poll_times:
            for name, data in recorded.items():
                for pt, pv in zip(data["t"], data["v"]):
                    if pt == t:
                        replay.observe(name, pt, pv, force=True)
            fresh.poll(t)
        assert fresh.decision_labels() == ctrl.decision_labels()
        assert [d["t"] for d in fresh.decisions] == [d["t"] for d in ctrl.decisions]

    def test_observe_tyolo_rate_shim_feeds_series(self):
        ctrl, sampler = self.make()
        ctrl.observe_tyolo_rate(1.0, 123.0)
        assert sampler.latest()["stage_fps[tyolo]"] == 123.0
