"""Whole-system integration tests tying every subsystem together."""

import numpy as np
import pytest

from repro import (
    FFSVA,
    FFSVAConfig,
    baseline_offline,
    build_trace,
    error_rate,
    jackson,
    make_stream,
    scene_accuracy,
    simulate_offline,
    simulate_online,
)
from repro.analytics import error_run_stats
from repro.models import ModelZoo
from repro.nn import TrainConfig


@pytest.fixture(scope="module")
def world():
    """One stream, trained zoo, and full trace shared across the module."""
    stream = make_stream(jackson(), 1600, tor=0.25, seed=101)
    zoo = ModelZoo()
    zoo.train_for_stream(
        stream,
        n_train_frames=250,
        stride=2,
        train_config=TrainConfig(epochs=10, batch_size=32, seed=7),
    )
    trace = build_trace(stream, zoo, with_ref=True)
    return stream, zoo, trace


class TestPaperClaimsEndToEnd:
    def test_cascade_saves_most_reference_work(self, world):
        _, _, trace = world
        cfg = FFSVAConfig(filter_degree=0.5)
        survivors = trace.cascade_pass(cfg.filter_degree)
        # At TOR 0.25, well over half the frames never reach the reference
        # model — the premise of the whole system.
        assert survivors.mean() < 0.5

    def test_accuracy_loss_under_two_percent_scenes(self, world):
        _, _, trace = world
        cfg = FFSVAConfig(filter_degree=0.5)
        acc = scene_accuracy(trace, cfg)
        assert acc.lost_frame_rate < 0.02
        assert acc.detection_rate > 0.9

    def test_offline_speedup_over_baseline(self, world):
        _, _, trace = world
        m_ffs = simulate_offline([trace], FFSVAConfig(filter_degree=1.0))
        m_base = baseline_offline([trace])
        assert m_ffs.throughput_fps > 1.5 * m_base.throughput_fps

    def test_error_rate_consistent_with_run_stats(self, world):
        _, _, trace = world
        cfg = FFSVAConfig(filter_degree=0.5)
        stats = error_run_stats(trace, cfg)
        assert stats.total == pytest.approx(error_rate(trace, cfg) * len(trace))

    def test_online_capacity_exceeds_naive_bound(self, world):
        # Four low-TOR streams must be trivially real-time for FFS-VA.
        _, _, trace = world
        traces = [trace.rotated(400 * i).renamed(f"s{i}") for i in range(4)]
        m = simulate_online(traces, FFSVAConfig(filter_degree=1.0))
        assert m.realtime()


class TestFacadeAgainstSimulator:
    def test_trace_then_simulate_matches_direct(self, world):
        stream, zoo, trace = world
        system = FFSVA(FFSVAConfig(filter_degree=0.5), zoo=zoo)
        t2 = system.trace(stream, n_frames=400)
        m1 = system.simulate_offline([t2])
        m2 = simulate_offline([trace.sliced(0, 400)], system.config)
        # Same decisions, same cost model => identical simulated runs.
        assert m1.frames_to_ref == m2.frames_to_ref
        assert m1.duration == pytest.approx(m2.duration, rel=1e-9)

    def test_real_run_and_simulation_agree_on_survivors(self, world):
        stream, zoo, trace = world
        cfg = FFSVAConfig(filter_degree=0.5, batch_size=8)
        system = FFSVA(cfg, zoo=zoo)
        report = system.analyze_offline(stream, n_frames=300)
        real_refs = sum(1 for o in report.outcomes if o.stage == "ref")
        sim_refs = simulate_offline([trace.sliced(0, 300)], cfg).frames_to_ref
        assert real_refs == sim_refs

    def test_per_stage_counters_match_trace_masks(self, world):
        _, _, trace = world
        cfg = FFSVAConfig(filter_degree=0.5)
        m = simulate_offline([trace], cfg)
        sdd_pass = trace.sdd_pass()
        assert m.stages["sdd"].passed == int(sdd_pass.sum())
        snm_seen = m.stages["snm"].entered
        assert snm_seen == int(sdd_pass.sum())
        tyolo_seen = m.stages["tyolo"].entered
        assert tyolo_seen == int((sdd_pass & trace.snm_pass(0.5)).sum())
