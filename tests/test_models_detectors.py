"""Tests for the grid detector backbone, T-YOLO, and the reference model."""

import numpy as np
import pytest

from repro.models import ReferenceModel, TYolo, classify_kind
from repro.models.griddet import GridDetector
from repro.models.tyolo import count_filter_mask
from repro.video import coral, jackson, make_stream


@pytest.fixture(scope="module")
def jackson_stream():
    return make_stream(jackson(), 1200, tor=0.3, seed=31)


@pytest.fixture(scope="module")
def coral_dense_stream():
    return make_stream(coral(), 1200, tor=1.0, seed=32)


def synthetic_frame_with_blob(h=80, w=120, n_blobs=1, blob_delta=0.4):
    """Flat background plus well-separated square blobs."""
    bg = np.full((h, w), 0.45, dtype=np.float32)
    frame = bg.copy()
    for i in range(n_blobs):
        cx = int((i + 1) * w / (n_blobs + 1))
        frame[h // 2 - 8 : h // 2 + 8, cx - 8 : cx + 8] += blob_delta
    return frame, bg


class TestGridDetector:
    def test_rejects_incompatible_resolution(self):
        with pytest.raises(ValueError):
            GridDetector(grid=13, resolution=100)

    def test_rejects_bad_conf_threshold(self):
        with pytest.raises(ValueError):
            GridDetector(conf_threshold=0.0)

    def test_empty_scene_no_detections(self):
        frame, bg = synthetic_frame_with_blob(n_blobs=0)
        det = GridDetector()
        assert det.detect(frame, bg) == []

    def test_single_blob_detected(self):
        frame, bg = synthetic_frame_with_blob(n_blobs=1)
        det = GridDetector()
        dets = det.detect(frame, bg)
        assert len(dets) == 1
        assert dets[0].confidence > 0.2

    def test_detection_location(self):
        frame, bg = synthetic_frame_with_blob(n_blobs=1)
        det = GridDetector()
        d = det.detect(frame, bg)[0]
        cx, cy = d.center
        assert abs(cx - 60) < 20
        assert abs(cy - 40) < 20

    def test_separated_blobs_counted(self):
        # Blobs several grid cells apart resolve individually even at 13x13.
        frame, bg = synthetic_frame_with_blob(w=360, n_blobs=3)
        det = GridDetector()
        assert det.count(frame, bg) == 3

    def test_adjacent_blobs_merge_at_coarse_grid(self):
        # Blobs within ~a cell of each other merge into one detection at
        # 13x13 but resolve at the reference model's finer grid — the
        # structural source of the paper's dense-object undercounting.
        frame, bg = synthetic_frame_with_blob(w=120, n_blobs=3)
        coarse = GridDetector(grid=13, resolution=104)
        fine = GridDetector(grid=52, resolution=208, cell_activation=0.12, conf_threshold=0.15)
        assert coarse.count(frame, bg) < fine.count(frame, bg)

    def test_lighting_invariance(self):
        frame, bg = synthetic_frame_with_blob(n_blobs=1)
        det = GridDetector()
        brighter = np.clip(frame * 1.1, 0, 1)
        assert det.count(brighter, bg) == 1
        # And no false detection on a uniformly brightened empty scene.
        assert det.count(np.clip(bg * 1.1, 0, 1), bg) == 0

    def test_count_batch_matches_single(self):
        f1, bg = synthetic_frame_with_blob(n_blobs=1)
        f2, _ = synthetic_frame_with_blob(n_blobs=2)
        det = GridDetector()
        batch = np.stack([f1, f2, bg])
        np.testing.assert_array_equal(det.count_batch(batch, bg), [1, 2, 0])

    def test_detect_batch_matches_single(self, jackson_stream):
        bg = jackson_stream.reference_image()
        px = jackson_stream.pixel_batch([100, 200, 300])
        det = GridDetector()
        joint = det.detect_batch(px, bg)
        for i, t in enumerate([100, 200, 300]):
            single = det.detect(jackson_stream.pixels(t), bg)
            assert len(joint[i]) == len(single)

    def test_dark_object_detected(self):
        bg = np.full((80, 120), 0.6, dtype=np.float32)
        frame = bg.copy()
        frame[30:50, 50:70] -= 0.4
        assert GridDetector().count(frame, bg) == 1

    def test_background_cache_survives_address_reuse(self):
        # Regression: the resized-background cache used to key on
        # id(background).  After the cached array was garbage collected, a
        # new background allocated at the same address hit the stale entry
        # and the detector compared frames against the wrong scene.  The
        # fix holds a reference and checks identity, so a fresh array —
        # even one reusing the freed address — must be re-resized.
        det = GridDetector()
        frame, bg = synthetic_frame_with_blob(w=360, n_blobs=2)
        for _ in range(50):  # court address reuse across same-shape allocs
            bg_dark = np.zeros_like(bg)
            # Against black everything differs: one whole-frame blob.
            assert det.count(frame, bg_dark) == 1
            del bg_dark
            # A stale dark-background resize would report 1 here, not 2.
            assert det.count(frame, bg.copy()) == 2

    def test_background_cache_hit_returns_same_resize(self):
        det = GridDetector()
        bg = np.full((80, 120), 0.45, dtype=np.float32)
        assert det._resized_background(bg) is det._resized_background(bg)


class TestClassifyKind:
    def test_wide_box_is_car(self):
        assert classify_kind(30, 15) == "car"

    def test_tall_box_is_person(self):
        assert classify_kind(10, 25) == "person"

    def test_degenerate_height(self):
        assert classify_kind(10, 0) == "car"


class TestCountFilterMask:
    def test_basic(self):
        counts = np.array([0, 1, 2, 3])
        np.testing.assert_array_equal(
            count_filter_mask(counts, 2), [False, False, True, True]
        )

    def test_relax_lowers_bar(self):
        counts = np.array([0, 1, 2, 3])
        np.testing.assert_array_equal(
            count_filter_mask(counts, 2, relax=1), [False, True, True, True]
        )

    def test_relax_never_below_one(self):
        counts = np.array([0, 1])
        np.testing.assert_array_equal(
            count_filter_mask(counts, 1, relax=5), [False, True]
        )

    def test_monotone_in_number_of_objects(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(0, 6, size=100)
        prev = count_filter_mask(counts, 1).sum()
        for n in range(2, 7):
            cur = count_filter_mask(counts, n).sum()
            assert cur <= prev
            prev = cur

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            count_filter_mask(np.array([1]), 0)
        with pytest.raises(ValueError):
            count_filter_mask(np.array([1]), 1, relax=-1)


class TestFidelityRelationship:
    """The structural T-YOLO vs reference-model relationship from Section 5.3.3."""

    def test_presence_accuracy_high_on_sparse_cars(self, jackson_stream):
        bg = jackson_stream.reference_image()
        ts = np.arange(0, 1200, 7)
        px = jackson_stream.pixel_batch(ts)
        gt = jackson_stream.gt_counts()[ts]
        ty = TYolo().count_batch(px, bg)
        acc = ((ty > 0) == (gt > 0)).mean()
        assert acc > 0.9

    def test_tyolo_undercounts_dense_persons_vs_reference(self, coral_dense_stream):
        bg = coral_dense_stream.reference_image()
        ts = np.arange(0, 1200, 7)
        px = coral_dense_stream.pixel_batch(ts)
        ty = TYolo().count_batch(px, bg)
        ref = ReferenceModel().count_batch(px, bg)
        # T-YOLO merges grouped small objects: it should undercount relative
        # to the reference model on a meaningful share of dense frames, and
        # almost never overcount it.
        assert (ty < ref).mean() > 0.15
        assert (ty > ref).mean() < 0.05

    def test_reference_labels_binary(self, jackson_stream):
        bg = jackson_stream.reference_image()
        px = jackson_stream.pixel_batch([0, 50, 100])
        labels = ReferenceModel().label_frames(px, bg)
        assert set(np.unique(labels)).issubset({0, 1})

    def test_tyolo_passes_number_of_objects(self, jackson_stream):
        bg = jackson_stream.reference_image()
        ts = np.arange(0, 1200, 11)
        px = jackson_stream.pixel_batch(ts)
        ty = TYolo()
        out1 = ty.passes(px, bg, number_of_objects=1).sum()
        out2 = ty.passes(px, bg, number_of_objects=2).sum()
        out3 = ty.passes(px, bg, number_of_objects=3).sum()
        assert out1 >= out2 >= out3
        assert out1 > 0
