"""Tests for the telemetry subsystem (repro.obs) and its runtime wiring."""

import json
import time
import urllib.request

import numpy as np
import pytest

from repro.core import FFSVAConfig, RunMetrics, build_trace
from repro.core.metrics import LatencyStats, StageCounters
from repro.core.pipeline import (
    DROPPED,
    MERGED,
    PER_STREAM,
    BatchRule,
    StageGraph,
    StageLogic,
    StageSpec,
)
from repro.models import ModelZoo
from repro.nn import TrainConfig
from repro.obs import (
    DEFAULT_BUCKETS,
    EVENT_KINDS,
    ClusterMetricsServer,
    EventBus,
    FrameSpan,
    LatencyHistogram,
    MetricsAggregator,
    RotatingTraceWriter,
    Series,
    Telemetry,
    TelemetryEvent,
    TelemetryServer,
    TimeSeriesSampler,
    build_spans,
    chrome_trace,
    parse_prometheus,
    render_prometheus,
    snapshot_json,
)
from repro.runtime import ThreadedPipeline
from repro.sim import PipelineSimulator
from repro.video import jackson, make_stream

N_FRAMES = 200


@pytest.fixture(scope="module")
def trained():
    """One small trained stream plus its trace."""
    zoo = ModelZoo()
    stream = make_stream(jackson(), N_FRAMES, tor=0.3, seed=11)
    zoo.train_for_stream(
        stream,
        n_train_frames=120,
        stride=2,
        train_config=TrainConfig(epochs=6, batch_size=32, seed=7),
    )
    return stream, build_trace(stream, zoo), zoo


# ---------------------------------------------------------------------------
# event bus
# ---------------------------------------------------------------------------
class TestEventBus:
    def test_emit_and_snapshot(self):
        bus = EventBus(capacity=8)
        bus.emit("frame_enter", 0.5, "sdd", stream=0, frame=3)
        (ev,) = bus.events()
        assert ev == TelemetryEvent(ts=0.5, kind="frame_enter", stage="sdd",
                                    stream=0, frame=3)
        assert bus.counts["frame_enter"] == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            EventBus().emit("frame_teleport", 0.0, "sdd")

    def test_ring_drops_oldest_and_counts(self):
        bus = EventBus(capacity=4)
        for i in range(10):
            bus.emit("batch_exec", float(i), "snm", n=1)
        assert len(bus) == 4
        assert bus.dropped == 6
        assert bus.published == 10
        assert [e.ts for e in bus.events()] == [6.0, 7.0, 8.0, 9.0]

    def test_drain_empties(self):
        bus = EventBus(capacity=4)
        bus.emit("admission", 0.0, "sdd", stream=0, frame=0)
        assert len(bus.drain()) == 1
        assert len(bus) == 0


# ---------------------------------------------------------------------------
# sampler
# ---------------------------------------------------------------------------
class TestSampler:
    def test_interval_gating(self):
        s = TimeSeriesSampler(interval=1.0)
        assert s.observe("q", 0.0, 1.0)
        assert not s.observe("q", 0.5, 2.0)  # too soon
        assert s.observe("q", 1.1, 3.0)
        t, v = s.series("q").t, s.series("q").v
        assert (t, v) == ([0.0, 1.1], [1.0, 3.0])

    def test_decimation_bounds_storage(self):
        series = Series(capacity=8, min_interval=0.0)
        for i in range(1000):
            series.add(float(i), float(i))
        assert len(series) <= 8
        # The thinned record stays within one effective interval of now.
        assert 999.0 - series.last()[0] <= series.min_interval
        assert series.min_interval > 0
        assert series.add(1000.0, -1.0, force=True)  # force always lands
        assert series.last() == (1000.0, -1.0)

    def test_observe_many_advances_due_clock(self):
        s = TimeSeriesSampler(interval=0.5)
        assert s.due(0.0)
        s.observe_many(0.0, {"a": 1.0, "b": 2.0})
        assert not s.due(0.4)
        assert s.due(0.6)
        assert s.latest() == {"a": 1.0, "b": 2.0}

    def test_to_dict(self):
        s = TimeSeriesSampler(interval=0.1)
        s.observe("x", 0.0, 5.0)
        assert s.to_dict() == {"x": {"t": [0.0], "v": [5.0]}}


class TestSeriesEdgeCases:
    def test_min_interval_gates_then_doubles_on_decimation(self):
        series = Series(capacity=4, min_interval=1.0)
        assert series.add(0.0, 0.0)
        assert not series.add(0.5, 1.0)  # inside min_interval: dropped
        assert series.add(1.0, 1.0)  # exactly one interval later: kept
        for t in (2.0, 3.0, 4.0):
            series.add(t, t)
        # The fifth retained point overflowed capacity=4: every other point
        # is kept and the effective interval doubles.
        assert series.t == [0.0, 2.0, 4.0]
        assert series.min_interval == 2.0
        assert not series.add(5.0, 5.0)  # old cadence now below the bar
        assert series.add(6.0, 6.0)

    def test_force_overrides_interval_but_not_capacity(self):
        series = Series(capacity=4, min_interval=10.0)
        for i in range(5):
            assert series.add(float(i), float(i), force=True)
        # force= bypasses the interval gate yet still triggers decimation.
        assert len(series) <= 4
        assert series.min_interval == 20.0

    def test_decimation_keeps_even_indices_including_endpoints(self):
        series = Series(capacity=8, min_interval=0.0)
        for i in range(9):
            series.add(float(i), float(i) * 10.0)
        # Length hit capacity+1 (odd) -> even indices keep both endpoints,
        # and (t, v) pairs stay aligned.
        assert series.t == [0.0, 2.0, 4.0, 6.0, 8.0]
        assert series.v == [0.0, 20.0, 40.0, 60.0, 80.0]
        assert series.last() == (8.0, 80.0)

    def test_repeated_decimation_stays_bounded_and_ordered(self):
        series = Series(capacity=8, min_interval=0.0)
        for i in range(10_000):
            series.add(float(i), float(i))
        assert len(series) <= 8
        assert series.t == sorted(series.t)
        # The retained record always includes the newest sample's epoch.
        assert series.t[-1] >= 10_000 - series.min_interval
        assert all(t == v for t, v in zip(series.t, series.v))

    def test_empty_series_accessors(self):
        series = Series(capacity=4)
        assert series.last() is None
        assert len(series) == 0
        assert series.to_dict() == {"t": [], "v": []}

    def test_capacity_floor_enforced(self):
        with pytest.raises(ValueError):
            Series(capacity=3)


# ---------------------------------------------------------------------------
# trace spans and chrome export
# ---------------------------------------------------------------------------
def _synthetic_events():
    return [
        TelemetryEvent(0.0, "frame_enter", "sdd", stream=0, frame=0),
        TelemetryEvent(0.3, "frame_pass", "sdd", stream=0, frame=0, t_start=0.1),
        TelemetryEvent(0.3, "frame_enter", "ref", stream=0, frame=0),
        TelemetryEvent(0.9, "frame_pass", "ref", stream=0, frame=0, t_start=0.5),
        TelemetryEvent(0.0, "frame_enter", "sdd", stream=1, frame=0),
        TelemetryEvent(0.3, "frame_filter", "sdd", stream=1, frame=0, t_start=0.1),
    ]


class TestSpans:
    def test_build_spans_wait_and_exec(self):
        spans = build_spans(_synthetic_events(), terminal="ref")
        assert len(spans) == 3
        by_key = {(s.stream, s.stage): s for s in spans}
        sdd = by_key[(0, "sdd")]
        assert sdd.queue_wait == pytest.approx(0.1)
        assert sdd.exec_time == pytest.approx(0.2)
        assert sdd.disposition == "pass"
        assert by_key[(0, "ref")].disposition == "analyzed"
        assert by_key[(1, "sdd")].disposition == "filtered"

    def test_missing_enter_falls_back(self):
        spans = build_spans(
            [TelemetryEvent(0.3, "frame_pass", "sdd", stream=0, frame=0, t_start=0.1)]
        )
        assert spans[0].queue_wait == 0.0

    def test_chrome_trace_loads_and_has_required_keys(self):
        doc = chrome_trace(build_spans(_synthetic_events(), terminal="ref"))
        doc = json.loads(json.dumps(doc))  # must serialize cleanly
        assert doc["traceEvents"]
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert slices and all(
            {"name", "ph", "ts", "dur", "pid", "tid"} <= set(e) for e in slices
        )
        # microsecond timestamps
        ref = next(e for e in slices if e["name"] == "ref")
        assert ref["ts"] == pytest.approx(0.5e6)
        assert ref["dur"] == pytest.approx(0.4e6)
        assert any(e["ph"] == "M" for e in doc["traceEvents"])  # metadata names


# ---------------------------------------------------------------------------
# export plane
# ---------------------------------------------------------------------------
def _sample_metrics() -> RunMetrics:
    return RunMetrics(
        n_streams=2,
        duration=4.0,
        frames_offered=100,
        frames_ingested=100,
        frames_to_ref=7,
        stages={
            "sdd": StageCounters(100, 60, 40),
            "ref": StageCounters(7, 7, 0),
        },
        ref_latency=LatencyStats(count=7, mean=0.2, p50=0.1, p95=0.3, p99=0.4, max=0.5),
        frame_latency=LatencyStats(count=100, mean=0.1, p50=0.1, p95=0.2, p99=0.3, max=0.4),
        device_utilization={"gpu0": 0.75},
        queue_high_water={"sdd[0]": 2},
        extra={"note": [1, 2]},
    )


class TestExport:
    def test_prometheus_counters_match_stages_exactly(self):
        m = _sample_metrics()
        text = render_prometheus(m)
        for stage, c in m.stages.items():
            assert f'ffsva_stage_frames_entered_total{{stage="{stage}"}} {c.entered}' in text
            assert f'ffsva_stage_frames_passed_total{{stage="{stage}"}} {c.passed}' in text
            assert f'ffsva_stage_frames_filtered_total{{stage="{stage}"}} {c.filtered}' in text
        assert 'ffsva_queue_high_water{queue="sdd[0]"} 2' in text
        assert 'ffsva_frame_latency_seconds{quantile="0.95"} 0.2' in text
        assert "# TYPE ffsva_stage_frames_entered_total counter" in text

    def test_prometheus_includes_bus_and_series(self):
        tel = Telemetry()
        tel.bus.emit("admission", 0.0, "sdd", stream=0, frame=0)
        tel.sampler.observe("queue_depth[snm[0]]", 0.0, 3.0)
        text = render_prometheus(None, tel)
        assert 'ffsva_telemetry_events_total{kind="admission"} 1' in text
        assert 'ffsva_sample_gauge{series="queue_depth[snm[0]]"} 3.0' in text

    def test_snapshot_json_shape(self):
        snap = snapshot_json(_sample_metrics(), Telemetry())
        assert set(snap) == {"metrics", "bus", "series", "histograms"}
        json.dumps(snap)  # fully serializable

    def test_http_endpoints(self):
        m = _sample_metrics()
        tel = Telemetry()
        server = TelemetryServer(lambda: (m, tel), port=0).start()
        try:
            base = server.url
            text = urllib.request.urlopen(f"{base}/metrics").read().decode()
            assert 'ffsva_stage_frames_entered_total{stage="sdd"} 100' in text
            snap = json.loads(urllib.request.urlopen(f"{base}/snapshot").read())
            assert snap["metrics"]["frames_offered"] == 100
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"{base}/nope")
        finally:
            server.stop()

    def test_parse_prometheus_round_trips_exposition(self):
        samples = parse_prometheus(render_prometheus(_sample_metrics()))
        by_key = {(n, tuple(sorted(labels.items()))): v for n, labels, v in samples}
        assert by_key[("ffsva_frames_offered_total", ())] == 100
        assert (
            by_key[("ffsva_stage_frames_entered_total", (("stage", "sdd"),))] == 100
        )
        assert (
            by_key[("ffsva_frame_latency_seconds", (("quantile", "0.95"),))] == 0.2
        )

    def test_parse_prometheus_handles_quoted_commas_and_escapes(self):
        samples = parse_prometheus(
            '# HELP x y\nm{a="v,w",b="q\\"r"} 3\nplain 1.5\n'
        )
        assert samples == [
            ("m", {"a": "v,w", "b": 'q"r'}, 3.0),
            ("plain", {}, 1.5),
        ]


# ---------------------------------------------------------------------------
# /traces endpoint (retention-aware segment serving)
# ---------------------------------------------------------------------------
def _span(frame: int, t0: float, stage: str = "sdd") -> FrameSpan:
    return FrameSpan(
        stream=0,
        frame=frame,
        stage=stage,
        t_enter=t0,
        t_start=t0,
        t_end=t0 + 0.5,
        disposition="pass",
    )


@pytest.fixture
def trace_dir(tmp_path):
    """Several rotated segments covering t in [0, ~3.2)."""
    writer = RotatingTraceWriter(tmp_path, max_bytes=1 << 20, max_span=1.0)
    for i in range(9):
        writer.add(_span(i, i / 3.0))
    manifest = writer.close()
    assert len(manifest["segments"]) >= 3
    return tmp_path, manifest


class TestTracesEndpoint:
    def serve(self, directory):
        return TelemetryServer(
            lambda: (_sample_metrics(), Telemetry()),
            port=0,
            trace_dir=str(directory),
        ).start()

    def get(self, url):
        with urllib.request.urlopen(url) as resp:
            return json.loads(resp.read())

    def test_bare_traces_returns_manifest(self, trace_dir):
        directory, manifest = trace_dir
        with self.serve(directory) as server:
            doc = self.get(f"{server.url}/traces")
        assert doc["segments"] == manifest["segments"]

    def test_time_range_selects_overlapping_segments(self, trace_dir):
        directory, manifest = trace_dir
        expected = [
            s["file"]
            for s in manifest["segments"]
            if s["t_end"] >= 1.1 and s["t_start"] <= 1.9
        ]
        assert 0 < len(expected) < len(manifest["segments"])
        with self.serve(directory) as server:
            doc = self.get(f"{server.url}/traces?t0=1.1&t1=1.9")
            assert [s["file"] for s in doc["segments"]] == expected
            assert doc["missing"] == []
            merged = self.get(f"{server.url}/traces?t0=0&t1=9&merge=1")
        assert len(merged["segments"]) == len(manifest["segments"])
        spans = [e for e in merged["traceEvents"] if e.get("ph") == "X"]
        assert len(spans) == 9

    def test_rotated_out_segment_is_reported_missing(self, trace_dir):
        directory, manifest = trace_dir
        victim = manifest["segments"][0]["file"]
        (directory / victim).unlink()
        with self.serve(directory) as server:
            doc = self.get(f"{server.url}/traces?t0=0&t1=9")
            assert doc["missing"] == [victim]
            assert len(doc["segments"]) == len(manifest["segments"]) - 1
            # The raw-segment route: known-but-deleted is 410, unknown 404.
            with pytest.raises(urllib.error.HTTPError) as gone:
                urllib.request.urlopen(f"{server.url}/traces/{victim}")
            assert gone.value.code == 410
            with pytest.raises(urllib.error.HTTPError) as unknown:
                urllib.request.urlopen(f"{server.url}/traces/nope.json")
            assert unknown.value.code == 404

    def test_raw_segment_served_verbatim(self, trace_dir):
        directory, manifest = trace_dir
        name = manifest["segments"][-1]["file"]
        with self.serve(directory) as server:
            doc = self.get(f"{server.url}/traces/{name}")
        assert doc == json.loads((directory / name).read_text())

    def test_without_trace_dir_route_stays_404(self):
        server = TelemetryServer(lambda: (_sample_metrics(), Telemetry()), port=0)
        with server:
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"{server.url}/traces")


# ---------------------------------------------------------------------------
# cluster metrics aggregation
# ---------------------------------------------------------------------------
class TestMetricsAggregator:
    def two_instances(self):
        m0, m1 = _sample_metrics(), _sample_metrics()
        m1.frames_offered = 40
        m1.stages["sdd"] = StageCounters(40, 10, 30)
        s0 = TelemetryServer(lambda: (m0, Telemetry()), port=0).start()
        s1 = TelemetryServer(lambda: (m1, Telemetry()), port=0).start()
        return (m0, m1), (s0, s1)

    def test_render_labels_and_sums(self):
        (m0, m1), (s0, s1) = self.two_instances()
        try:
            agg = MetricsAggregator({"0": s0.url, "1": s1.url})
            samples = parse_prometheus(agg.render())
            per = {
                (n, labels.get("instance"), labels.get("stage")): v
                for n, labels, v in samples
            }
            assert per[("ffsva_frames_offered_total", "0", None)] == 100
            assert per[("ffsva_frames_offered_total", "1", None)] == 40
            assert per[("ffsva_cluster_frames_offered_total", None, None)] == 140
            assert per[("ffsva_cluster_stage_frames_entered_total", None, "sdd")] == 140
            assert per[("ffsva_cluster_scrape_errors_total", None, None)] == 0
        finally:
            s0.stop()
            s1.stop()

    def test_unreachable_instance_counts_as_scrape_error(self):
        (_, _), (s0, s1) = self.two_instances()
        s1_url = s1.url
        s1.stop()
        try:
            agg = MetricsAggregator({"0": s0.url, "1": s1_url}, timeout=0.5)
            samples = parse_prometheus(agg.render())
            errors = [v for n, _, v in samples if n == "ffsva_cluster_scrape_errors_total"]
            assert errors == [1.0]
            assert list(agg.errors) == ["1"]
            # The reachable instance still contributes to the sums.
            sums = [v for n, _, v in samples if n == "ffsva_cluster_frames_offered_total"]
            assert sums == [100.0]
        finally:
            s0.stop()

    def test_cluster_server_endpoints(self):
        (_, _), (s0, s1) = self.two_instances()
        try:
            agg = MetricsAggregator({"0": s0.url, "1": s1.url})
            with ClusterMetricsServer(agg, port=0) as cs:
                text = urllib.request.urlopen(f"{cs.url}/metrics").read().decode()
                assert "ffsva_cluster_frames_offered_total 140" in text
                inst = json.loads(
                    urllib.request.urlopen(f"{cs.url}/instances").read()
                )
                assert inst["targets"] == {"0": s0.url, "1": s1.url}
                assert inst["errors"] == {}
                with pytest.raises(urllib.error.HTTPError):
                    urllib.request.urlopen(f"{cs.url}/nope")
        finally:
            s0.stop()
            s1.stop()


# ---------------------------------------------------------------------------
# explicit-bucket histograms
# ---------------------------------------------------------------------------
class TestHistograms:
    def test_bucket_placement_and_cumulative(self):
        h = LatencyHistogram(bounds=(0.01, 0.1, 1.0))
        for v in (0.005, 0.01, 0.05, 0.5, 5.0):
            h.observe(v)
        # bisect_left: a value equal to a bound lands in that bound's bucket.
        assert h.counts == [2, 1, 1]
        assert h.inf == 1
        assert h.count == 5
        assert h.sum == pytest.approx(5.565)
        assert h.cumulative() == [("0.01", 2), ("0.1", 3), ("1", 4), ("+Inf", 5)]

    def test_default_bounds_span_pipeline_latencies(self):
        h = LatencyHistogram()
        assert h.bounds == DEFAULT_BUCKETS
        h.observe(0.0004)  # sub-ms SDD batch -> first bucket
        h.observe(30.0)  # straggler -> +Inf
        assert h.counts[0] == 1 and h.inf == 1

    def test_observe_latency_label_keying(self):
        tel = Telemetry()
        tel.observe_latency("stage_exec_seconds", 0.01, stage="sdd")
        tel.observe_latency("stage_exec_seconds", 0.02, stage="sdd")
        tel.observe_latency("stage_exec_seconds", 0.03, stage="snm")
        series = tel.histograms["stage_exec_seconds"]
        assert set(series) == {(("stage", "sdd"),), (("stage", "snm"),)}
        assert series[(("stage", "sdd"),)].count == 2
        assert series[(("stage", "snm"),)].count == 1

    def test_prometheus_histogram_rendering(self):
        tel = Telemetry()
        for v in (0.0005, 0.03, 0.03, 7.0, 20.0):
            tel.observe_latency("stage_exec_seconds", v, stage="sdd")
        text = render_prometheus(None, tel)
        assert "# TYPE ffsva_stage_exec_seconds_hist histogram" in text
        # Cumulative le samples: the 0.05 bucket holds the first three
        # observations, +Inf equals the total count.
        assert 'ffsva_stage_exec_seconds_hist_bucket{le="0.001",stage="sdd"} 1' in text
        assert 'ffsva_stage_exec_seconds_hist_bucket{le="0.05",stage="sdd"} 3' in text
        assert 'ffsva_stage_exec_seconds_hist_bucket{le="10",stage="sdd"} 4' in text
        assert 'ffsva_stage_exec_seconds_hist_bucket{le="+Inf",stage="sdd"} 5' in text
        assert 'ffsva_stage_exec_seconds_hist_count{stage="sdd"} 5' in text
        (sum_line,) = [
            line for line in text.splitlines()
            if line.startswith("ffsva_stage_exec_seconds_hist_sum")
        ]
        assert float(sum_line.rsplit(" ", 1)[1]) == pytest.approx(27.0605)

    def test_cumulative_buckets_are_monotone(self):
        tel = Telemetry()
        rng = np.random.default_rng(0)
        for v in rng.exponential(0.1, size=200):
            tel.observe_latency("frame_latency_seconds", float(v), stage="ref")
        text = render_prometheus(None, tel)
        values = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("ffsva_frame_latency_seconds_hist_bucket")
        ]
        assert values == sorted(values)
        assert values[-1] == 200  # +Inf == count

    def test_snapshot_json_histograms(self):
        tel = Telemetry()
        tel.observe_latency("stage_exec_seconds", 0.02, stage="snm")
        snap = snapshot_json(None, tel)
        (entry,) = snap["histograms"]["stage_exec_seconds"]
        assert entry["labels"] == {"stage": "snm"}
        assert entry["count"] == 1
        assert sum(entry["counts"]) + entry["inf"] == 1
        json.dumps(snap)

    def test_runtimes_populate_stage_exec_histograms(self, trained):
        stream, trace, zoo = trained
        tel_real = Telemetry()
        ThreadedPipeline([stream], zoo, FFSVAConfig(), telemetry=tel_real).run()
        tel_sim = Telemetry()
        PipelineSimulator([trace], FFSVAConfig(), online=False, telemetry=tel_sim).run()
        for tel in (tel_real, tel_sim):
            assert set(tel.histograms) >= {"stage_exec_seconds", "frame_latency_seconds"}
            stages = {dict(k)["stage"] for k in tel.histograms["stage_exec_seconds"]}
            assert stages >= {"sdd", "snm", "tyolo", "ref"}
            # Every frame gets exactly one terminal latency observation.
            total = sum(
                h.count for h in tel.histograms["frame_latency_seconds"].values()
            )
            assert total == len(stream)


# ---------------------------------------------------------------------------
# RunMetrics serialization (satellite)
# ---------------------------------------------------------------------------
class TestRunMetricsJson:
    def test_round_trip(self):
        m = _sample_metrics()
        m2 = RunMetrics.from_json(m.to_json())
        assert m2.to_dict() == m.to_dict()
        assert m2.stages["sdd"] == m.stages["sdd"]
        assert m2.ref_latency == m.ref_latency
        assert list(m2.stages) == list(m.stages)  # stage order preserved

    def test_numpy_extra_serializes(self):
        m = _sample_metrics()
        m.extra["arr"] = np.arange(3)
        m.extra["scalar"] = np.float64(1.5)
        m2 = RunMetrics.from_json(m.to_json())
        assert m2.extra["arr"] == [0, 1, 2]
        assert m2.extra["scalar"] == 1.5


# ---------------------------------------------------------------------------
# end-to-end: both runtimes, one event schema
# ---------------------------------------------------------------------------
def _check_events_match_counters(tel: Telemetry, metrics: RunMetrics):
    """Per-stage disposition events must reproduce the stage counters."""
    events = tel.bus.events()
    assert tel.bus.dropped == 0  # the ring was big enough: nothing evicted
    assert {e.kind for e in events} <= set(EVENT_KINDS)
    for stage, c in metrics.stages.items():
        stage_evs = [e for e in events if e.stage == stage]
        n_pass = sum(e.kind == "frame_pass" for e in stage_evs)
        n_filter = sum(e.kind == "frame_filter" for e in stage_evs)
        assert n_pass + n_filter == c.entered
        assert n_filter == c.filtered
        batch_total = sum(e.n for e in stage_evs if e.kind == "batch_exec")
        assert batch_total == c.entered


class TestEndToEnd:
    def test_threaded_and_sim_same_schema(self, trained):
        stream, trace, zoo = trained
        config = FFSVAConfig(telemetry=True)

        tel_real = Telemetry.from_config(config)
        pipe = ThreadedPipeline([stream], zoo, config, telemetry=tel_real)
        m_real = pipe.run()

        tel_sim = Telemetry.from_config(config)
        sim = PipelineSimulator([trace], config, online=False, telemetry=tel_sim)
        m_sim = sim.run()

        _check_events_match_counters(tel_real, m_real)
        _check_events_match_counters(tel_sim, m_sim)
        # Identical field schema across runtimes.
        for tel in (tel_real, tel_sim):
            for ev in tel.bus.events():
                assert isinstance(ev, TelemetryEvent)
        assert {e.kind for e in tel_real.bus.events()} >= {
            "admission", "frame_enter", "frame_pass", "batch_exec"
        }
        assert {e.kind for e in tel_sim.bus.events()} >= {
            "admission", "frame_enter", "frame_pass", "batch_exec"
        }

        # Both produce loadable Chrome traces with per-frame slices.
        for tel, m in ((tel_real, m_real), (tel_sim, m_sim)):
            doc = json.loads(json.dumps(tel.chrome_trace(terminal="ref")))
            slices = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
            assert len(slices) >= m.stages["sdd"].entered

        # /metrics agrees with RunMetrics.stages for both runtimes.
        for tel, m in ((tel_real, m_real), (tel_sim, m_sim)):
            server = tel.serve(lambda m=m: m, port=0)
            try:
                text = urllib.request.urlopen(f"{server.url}/metrics").read().decode()
            finally:
                server.stop()
            for stage, c in m.stages.items():
                assert (
                    f'ffsva_stage_frames_entered_total{{stage="{stage}"}} {c.entered}'
                    in text
                )

        # Time-series were sampled in both timelines.
        assert any(n.startswith("queue_depth") for n in tel_sim.sampler.names)
        assert any(n.startswith("queue_depth") for n in tel_real.sampler.names)

    def test_threaded_spans_reconstruct(self, trained):
        stream, _, zoo = trained
        tel = Telemetry()
        pipe = ThreadedPipeline([stream], zoo, FFSVAConfig(), telemetry=tel)
        m = pipe.run(60)
        spans = tel.spans(terminal="ref")
        assert spans
        # Every span is causally ordered and non-negative.
        for s in spans:
            assert s.t_enter <= s.t_start <= s.t_end
        analyzed = [s for s in spans if s.disposition == "analyzed"]
        assert len(analyzed) == m.frames_to_ref

    def test_disabled_by_default(self, trained):
        stream, _, zoo = trained
        pipe = ThreadedPipeline([stream], zoo, FFSVAConfig())
        assert pipe.telemetry is None
        m = pipe.run(40)
        assert "telemetry" not in m.extra


# ---------------------------------------------------------------------------
# dropped disposition under put timeout (satellite)
# ---------------------------------------------------------------------------
def _slow_sink_graph(per_frame_sleep: float) -> StageGraph:
    def pass_all(pixels, bundles, zoo, cfg):
        return np.ones(len(pixels), dtype=bool), None

    def slow_sink(pixels, bundles, zoo, cfg):
        time.sleep(per_frame_sleep * len(pixels))
        return np.ones(len(pixels), dtype=bool), np.zeros(len(pixels), dtype=np.int64)

    ones = StageLogic(pass_all, lambda trace, cfg: np.ones(len(trace), dtype=bool))
    return StageGraph(
        [
            StageSpec(
                name="fast", device="cpu0", fan_in=PER_STREAM,
                batch=BatchRule("fixed", 4), logic=ones, queue_key="sdd",
            ),
            StageSpec(
                name="sink", device="cpu0", fan_in=MERGED,
                batch=BatchRule("fixed", 1),
                logic=StageLogic(
                    slow_sink, lambda trace, cfg: np.ones(len(trace), dtype=bool)
                ),
                queue_key="tyolo", terminal=True,
            ),
        ],
        name="slow-sink",
    )


class TestDroppedDisposition:
    def test_put_timeout_records_dropped_and_queue_block(self, trained):
        stream, _, zoo = trained
        tel = Telemetry()
        # A bounded terminal queue (depth 2 via "tyolo") fed faster than the
        # sink drains: producers must hit the put timeout and drop.
        config = FFSVAConfig(
            queue_put_timeout=0.02, telemetry=True, ref_overflow_to_storage=False
        )
        pipe = ThreadedPipeline(
            [stream], zoo, config, graph=_slow_sink_graph(0.15), telemetry=tel
        )
        n = 30
        m = pipe.run(n)
        # Every offered frame got a terminal disposition, timeout or not.
        assert len(pipe.outcomes) == m.frames_offered == n
        stages = {o.stage for o in pipe.outcomes}
        assert DROPPED in stages, "a full sink queue must produce drops"
        assert stages <= {"fast", "sink", DROPPED}
        m.check_conservation()
        # Each drop was preceded by at least one observed stall.
        n_dropped = sum(o.stage == DROPPED for o in pipe.outcomes)
        assert tel.bus.counts["queue_block"] >= n_dropped
        assert sum(m.extra["queue_put_timeouts"].values()) >= n_dropped

    def test_no_timeout_blocks_and_loses_nothing(self, trained):
        stream, _, zoo = trained
        pipe = ThreadedPipeline(
            [stream], zoo, FFSVAConfig(ref_overflow_to_storage=False),
            graph=_slow_sink_graph(0.002),
        )
        m = pipe.run(30)
        assert len(pipe.outcomes) == m.frames_offered == 30
        assert all(o.stage in ("fast", "sink") for o in pipe.outcomes)
